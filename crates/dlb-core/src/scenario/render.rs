//! Rendering of [`ScenarioReport`]s: the figures' exact text tables, plus
//! machine-readable JSON and CSV emission.

use super::spec::{Axis, Presentation, RowFmt, ScenarioSpec, Sweep, TableStyle, WorkloadSpec};
use super::{serde, ScenarioReport, StrategyCell};
use dlb_common::json::{object, Json};
use dlb_exec::MixMode;
use dlb_traffic::LatencySummary;
use std::fmt::Write as _;

/// True when the report's workload is an open-system arrival stream (its
/// cells carry an [`dlb_exec::OpenReport`] worth rendering). Open columns
/// are gated on this so closed-workload renderings stay byte-identical to
/// their pre-existing golden captures.
fn is_open(spec: &ScenarioSpec) -> bool {
    spec.workload.is_open()
}

/// True when the report's open workload runs a front end (result cache or
/// single-flight coalescing) above the engine. Front-end columns are gated
/// on this so pre-existing open renderings stay byte-identical to their
/// golden captures.
fn is_frontend(spec: &ScenarioSpec) -> bool {
    matches!(&spec.workload, WorkloadSpec::Open(o) if o.frontend().enabled())
}

/// True when the report's workload is a co-simulated mix (its cells carry a
/// composed contrast schedule worth rendering).
fn is_cosim(spec: &ScenarioSpec) -> bool {
    matches!(&spec.workload, WorkloadSpec::Mix(m) if m.mode == MixMode::CoSimulated)
}

/// True when the report's workload injects topology events (its cells carry
/// fault accounting and a fault-free contrast schedule). Fault columns are
/// gated on this so fault-free renderings stay byte-identical to their
/// pre-existing golden captures.
fn is_faulted(spec: &ScenarioSpec) -> bool {
    matches!(&spec.workload, WorkloadSpec::Mix(m) if !m.topology.is_empty())
}

/// The faulted / fault-free mean-response ratio of one cell (the response
/// inflation the topology events caused), if both schedules are present.
fn vs_clean(cell: &StrategyCell) -> Option<f64> {
    let mix = cell.mix.as_ref()?;
    let clean = cell.mix_fault_free.as_ref()?;
    (clean.mean_response_secs > 0.0).then(|| mix.mean_response_secs / clean.mean_response_secs)
}

/// The co-simulated / composed mean-response ratio of one cell, if both
/// schedules are present and the composed mean is positive.
fn vs_composed(cell: &StrategyCell) -> Option<f64> {
    let mix = cell.mix.as_ref()?;
    let composed = cell.mix_composed.as_ref()?;
    (composed.mean_response_secs > 0.0)
        .then(|| mix.mean_response_secs / composed.mean_response_secs)
}

/// Formats a ratio column entry (fixed 6.3 layout, `n/a` for NaN).
pub fn fmt_ratio(v: f64) -> String {
    if v.is_nan() {
        "   n/a".to_string()
    } else {
        format!("{v:6.3}")
    }
}

/// Renders a report as the figure's text table — for bundled figure specs,
/// byte-identical to the output of the pre-scenario figure binaries.
pub fn render_text(report: &ScenarioReport) -> String {
    let spec = &report.spec;
    match &spec.presentation {
        Presentation::Table(style) => {
            let headers: Vec<String> = if style.headers.is_empty() {
                spec.strategies
                    .iter()
                    .map(|s| s.label().to_string())
                    .collect()
            } else {
                style.headers.clone()
            };
            let mut out = banner(spec);
            render_rows(&mut out, report, style, &headers, |point, out| {
                for cell in &point.cells {
                    let _ = write!(out, "  {:>w$}", fmt_ratio(cell.value), w = style.cell_width);
                }
            });
            push_notes(&mut out, &spec.notes);
            out
        }
        Presentation::Grid(style) => {
            let cols = spec.columns.as_ref().expect("grids have columns");
            let headers: Vec<String> = cols.values.iter().map(|&v| col_header(cols, v)).collect();
            let mut out = banner(spec);
            // Header row.
            let _ = write!(out, "{:>w$}", style.row_header, w = style.row_width);
            for h in &headers {
                let _ = write!(out, "  {:>w$}", h, w = style.cell_width);
            }
            out.push('\n');
            // One output row per row value, one cell per column value.
            let ncols = cols.values.len();
            for (ri, &row) in spec.rows.values.iter().enumerate() {
                out.push_str(&row_label(spec, style, row));
                for ci in 0..ncols {
                    let cell = &report.points[ri * ncols + ci].cells[0];
                    let _ = write!(out, "  {:>w$}", fmt_ratio(cell.value), w = style.cell_width);
                }
                out.push('\n');
            }
            push_notes(&mut out, &spec.notes);
            out
        }
        Presentation::Balance(style) => {
            let labels: Vec<String> = spec.strategies.iter().map(|s| s.label()).collect();
            let mut out = banner(spec);
            // Header: ratio columns, then lb-traffic columns, then idle
            // columns.
            let _ = write!(out, "{:>w$}", style.row_header, w = style.row_width);
            for l in &labels {
                let _ = write!(out, "  {:>w$}", l, w = style.cell_width);
            }
            for l in &labels {
                let _ = write!(out, "  {:>14}", format!("{l} lb KB"));
            }
            for l in &labels {
                let _ = write!(out, "  {:>10}", format!("{l} idle"));
            }
            out.push('\n');
            for point in &report.points {
                out.push_str(&row_label(spec, style, point.row));
                for cell in &point.cells {
                    let _ = write!(out, "  {:>w$}", fmt_ratio(cell.value), w = style.cell_width);
                }
                for cell in &point.cells {
                    let _ = write!(out, "  {:>14}", cell.summary.total_lb_bytes / 1024);
                }
                for cell in &point.cells {
                    let _ = write!(out, "  {:>9.1}%", cell.summary.mean_idle_fraction * 100.0);
                }
                out.push('\n');
            }
            push_notes(&mut out, &spec.notes);
            out
        }
        Presentation::Mix(style) => {
            let labels: Vec<String> = spec.strategies.iter().map(|s| s.label()).collect();
            let cosim = is_cosim(spec);
            let faulted = is_faulted(spec);
            let mut out = banner(spec);
            // Header: ratio columns, then per-strategy mean response,
            // makespan, slowdown and admission-wait columns; co-simulated
            // mixes additionally contrast against the composed model, and
            // faulted mixes carry response inflation against the fault-free
            // run plus the rebalance/redo cost of the topology events.
            let _ = write!(out, "{:>w$}", style.row_header, w = style.row_width);
            for l in &labels {
                let _ = write!(out, "  {:>w$}", l, w = style.cell_width);
            }
            for l in &labels {
                let _ = write!(out, "  {:>12}", format!("{l} resp s"));
            }
            for l in &labels {
                let _ = write!(out, "  {:>12}", format!("{l} mksp s"));
            }
            for l in &labels {
                let _ = write!(out, "  {:>9}", format!("{l} slow"));
            }
            for l in &labels {
                let _ = write!(out, "  {:>12}", format!("{l} wait s"));
            }
            if cosim {
                for l in &labels {
                    let _ = write!(out, "  {:>12}", format!("{l} vs comp"));
                }
            }
            if faulted {
                for l in &labels {
                    let _ = write!(out, "  {:>13}", format!("{l} vs clean"));
                }
                for l in &labels {
                    let _ = write!(out, "  {:>12}", format!("{l} rebal KB"));
                }
                for l in &labels {
                    let _ = write!(out, "  {:>12}", format!("{l} redone"));
                }
            }
            out.push('\n');
            for point in &report.points {
                out.push_str(&row_label(spec, style, point.row));
                for cell in &point.cells {
                    let _ = write!(out, "  {:>w$}", fmt_ratio(cell.value), w = style.cell_width);
                }
                let mix_col = |out: &mut String, f: &dyn Fn(&StrategyCell) -> String| {
                    for cell in &point.cells {
                        let _ = write!(out, "  {:>12}", f(cell));
                    }
                };
                mix_col(&mut out, &|c| {
                    c.mix.as_ref().map_or("n/a".to_string(), |m| {
                        format!("{:.3}", m.mean_response_secs)
                    })
                });
                mix_col(&mut out, &|c| {
                    c.mix
                        .as_ref()
                        .map_or("n/a".to_string(), |m| format!("{:.3}", m.makespan_secs))
                });
                for cell in &point.cells {
                    let _ = write!(
                        out,
                        "  {:>9}",
                        cell.mix
                            .as_ref()
                            .map_or("n/a".to_string(), |m| format!("{:.2}", m.mean_slowdown))
                    );
                }
                mix_col(&mut out, &|c| {
                    c.mix
                        .as_ref()
                        .map_or("n/a".to_string(), |m| format!("{:.3}", m.mean_wait_secs))
                });
                if cosim {
                    mix_col(&mut out, &|c| {
                        vs_composed(c).map_or("n/a".to_string(), |r| format!("{r:.3}"))
                    });
                }
                if faulted {
                    for cell in &point.cells {
                        let _ = write!(
                            out,
                            "  {:>13}",
                            vs_clean(cell).map_or("n/a".to_string(), |r| format!("{r:.3}"))
                        );
                    }
                    mix_col(&mut out, &|c| {
                        c.faults.map_or("n/a".to_string(), |f| {
                            (f.rebalance_bytes / 1024).to_string()
                        })
                    });
                    mix_col(&mut out, &|c| {
                        c.faults
                            .map_or("n/a".to_string(), |f| f.tuples_redone.to_string())
                    });
                }
                out.push('\n');
            }
            push_notes(&mut out, &spec.notes);
            out
        }
        Presentation::Open(style) => {
            let labels: Vec<String> = spec.strategies.iter().map(|s| s.label()).collect();
            let frontend = is_frontend(spec);
            let mut out = banner(spec);
            // Header: ratio columns, then per-strategy response percentiles,
            // mean admission wait, mean slowdown and sustained throughput;
            // front-ended workloads additionally carry the cache hit ratio
            // and the effective-QPS multiplier (completed / engine queries).
            let _ = write!(out, "{:>w$}", style.row_header, w = style.row_width);
            for l in &labels {
                let _ = write!(out, "  {:>w$}", l, w = style.cell_width);
            }
            for q in ["p50 s", "p95 s", "p99 s", "wait s"] {
                for l in &labels {
                    let _ = write!(out, "  {:>12}", format!("{l} {q}"));
                }
            }
            for l in &labels {
                let _ = write!(out, "  {:>9}", format!("{l} slow"));
            }
            for l in &labels {
                let _ = write!(out, "  {:>10}", format!("{l} qps"));
            }
            if frontend {
                for l in &labels {
                    let _ = write!(out, "  {:>10}", format!("{l} hit%"));
                }
                for l in &labels {
                    let _ = write!(out, "  {:>10}", format!("{l} xQPS"));
                }
            }
            out.push('\n');
            for point in &report.points {
                out.push_str(&row_label(spec, style, point.row));
                for cell in &point.cells {
                    let _ = write!(out, "  {:>w$}", fmt_ratio(cell.value), w = style.cell_width);
                }
                let open_col = |out: &mut String, f: &dyn Fn(&StrategyCell) -> String| {
                    for cell in &point.cells {
                        let _ = write!(out, "  {:>12}", f(cell));
                    }
                };
                let resp = |c: &StrategyCell| c.open.as_ref().and_then(|o| o.response_summary());
                open_col(&mut out, &|c| {
                    resp(c).map_or("n/a".to_string(), |s| format!("{:.3}", s.p50))
                });
                open_col(&mut out, &|c| {
                    resp(c).map_or("n/a".to_string(), |s| format!("{:.3}", s.p95))
                });
                open_col(&mut out, &|c| {
                    resp(c).map_or("n/a".to_string(), |s| format!("{:.3}", s.p99))
                });
                open_col(&mut out, &|c| {
                    c.open
                        .as_ref()
                        .map_or("n/a".to_string(), |o| format!("{:.3}", o.wait.mean()))
                });
                for cell in &point.cells {
                    let _ = write!(
                        out,
                        "  {:>9}",
                        cell.open
                            .as_ref()
                            .map_or("n/a".to_string(), |o| format!("{:.2}", o.slowdown.mean()))
                    );
                }
                for cell in &point.cells {
                    let _ = write!(
                        out,
                        "  {:>10}",
                        cell.open
                            .as_ref()
                            .map_or("n/a".to_string(), |o| format!("{:.2}", o.throughput_qps))
                    );
                }
                if frontend {
                    for cell in &point.cells {
                        let _ = write!(
                            out,
                            "  {:>10}",
                            cell.open.as_ref().map_or("n/a".to_string(), |o| format!(
                                "{:.1}%",
                                o.hit_ratio() * 100.0
                            ))
                        );
                    }
                    for cell in &point.cells {
                        let _ = write!(
                            out,
                            "  {:>10}",
                            cell.open.as_ref().map_or("n/a".to_string(), |o| format!(
                                "{:.2}",
                                o.qps_multiplier()
                            ))
                        );
                    }
                }
                out.push('\n');
            }
            push_notes(&mut out, &spec.notes);
            out
        }
        Presentation::Chain => render_chain(report),
    }
}

/// The §5.3 chain report: plan shape, absolute response times and
/// load-balancing traffic per strategy.
fn render_chain(report: &ScenarioReport) -> String {
    let spec = &report.spec;
    let point = &report.points[0];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== {}: {}, {}x{}, skew {} ==",
        spec.title,
        spec.description,
        spec.machine.nodes,
        spec.machine.processors_per_node,
        point.row,
    );
    if let Some(shape) = &report.chain {
        let _ = writeln!(
            out,
            "plan: {} operators, {} pipeline chains, longest chain {} operators",
            shape.operators, shape.chains, shape.longest_chain
        );
    }
    let _ = writeln!(
        out,
        "{:>4}  {:>12}  {:>16}  {:>14}",
        "", "response", "lb data moved", "lb requests"
    );
    let cell_report = |cell: &StrategyCell| cell.runs[0].report.clone();
    for cell in &point.cells {
        let r = cell_report(cell);
        let _ = writeln!(
            out,
            "{:>4}  {:>12}  {:>13} KB  {:>14}",
            cell.strategy.label(),
            format!("{}", r.response_time),
            r.lb_bytes / 1024,
            r.lb_requests
        );
    }
    if point.cells.len() >= 2 {
        let first = cell_report(&point.cells[0]);
        let second = cell_report(&point.cells[1]);
        if first.lb_bytes > 0 {
            let _ = writeln!(
                out,
                "\n{} ships {:.1}x the data {} ships (paper: ~3.6x — 9 MB vs 2.5 MB).",
                point.cells[1].strategy.label(),
                second.lb_bytes as f64 / first.lb_bytes as f64,
                point.cells[0].strategy.label(),
            );
        } else {
            let _ = writeln!(
                out,
                "\n{} needed no global load balancing on this run; {} shipped {} KB.",
                point.cells[0].strategy.label(),
                point.cells[1].strategy.label(),
                second.lb_bytes / 1024
            );
        }
    }
    push_notes(&mut out, &spec.notes);
    out
}

/// The figure banner: separator, title line, workload line, separator.
fn banner(spec: &ScenarioSpec) -> String {
    let sep = "=".repeat(64);
    let workload = match &spec.workload {
        WorkloadSpec::Generated {
            queries,
            relations,
            scale,
            seed,
        } => format!(
            "workload: {queries} queries x {relations} relations, scale {scale}, seed {seed:#x}"
        ),
        WorkloadSpec::Chain {
            relations,
            build_rows,
            probe_rows,
        } => format!(
            "workload: {relations}-relation pipeline chain, \
             {build_rows} build rows, {probe_rows} probe rows"
        ),
        WorkloadSpec::Mix(mix) => format!(
            "workload: {}-query mix x {} relations, scale {}, seed {:#x}, \
             gap {}s, policy {}{}",
            mix.queries,
            mix.relations,
            mix.scale,
            mix.seed,
            mix.arrival_gap_secs,
            mix.policy.label(),
            // Composed is the historical default and stays unlabeled so
            // pre-existing golden captures remain byte-identical.
            match mix.mode {
                MixMode::Composed => "",
                MixMode::CoSimulated => ", co-simulated",
            }
        ),
        WorkloadSpec::Open(open) => format!(
            "workload: open {} arrivals, {} qps, burstiness {}, {} queries \
             over {} templates x {} relations, scale {}, seed {:#x}, \
             concurrency {}{}{}",
            open.kind.label(),
            open.rate_qps,
            open.burstiness,
            open.queries,
            open.templates,
            open.relations,
            open.scale,
            open.seed,
            open.concurrency,
            match open.priority_classes {
                1 => String::new(),
                n => format!(", {n} classes"),
            },
            // Front-end knobs only appear when set, so pre-existing open
            // golden captures remain byte-identical.
            {
                let mut extra = String::new();
                if open.template_skew != 0.0 {
                    let _ = write!(extra, ", t-skew {}", open.template_skew);
                }
                if open.cache_capacity != 0 {
                    let _ = write!(extra, ", cache {}", open.cache_capacity);
                    if open.cache_ttl_secs.is_finite() {
                        let _ = write!(extra, " ttl {}s", open.cache_ttl_secs);
                    }
                }
                if open.coalesce {
                    extra.push_str(", coalesce");
                }
                if open.fanout_cost_secs != 0.0 {
                    let _ = write!(extra, ", fanout {}s", open.fanout_cost_secs);
                }
                extra
            }
        ),
    };
    format!(
        "{sep}\n{} — {}\n{workload}\n{sep}\n",
        spec.title, spec.description
    )
}

fn push_notes(out: &mut String, notes: &str) {
    if !notes.is_empty() {
        out.push('\n');
        out.push_str(notes);
        out.push('\n');
    }
}

/// Renders the header and per-point rows of a strategy-column table.
fn render_rows(
    out: &mut String,
    report: &ScenarioReport,
    style: &TableStyle,
    headers: &[String],
    cells: impl Fn(&super::PointResult, &mut String),
) {
    let _ = write!(out, "{:>w$}", style.row_header, w = style.row_width);
    for h in headers {
        let _ = write!(out, "  {:>w$}", h, w = style.cell_width);
    }
    out.push('\n');
    for point in &report.points {
        out.push_str(&row_label(&report.spec, style, point.row));
        cells(point, out);
        out.push('\n');
    }
}

/// The formatted row label of one row value.
fn row_label(spec: &ScenarioSpec, style: &TableStyle, v: f64) -> String {
    let w = style.row_width;
    match style.row_fmt {
        RowFmt::Int => format!("{:>w$}", v as u64),
        RowFmt::Fixed1 => format!("{v:>w$.1}"),
        RowFmt::Fixed2 => format!("{v:>w$.2}"),
        RowFmt::Percent => format!("{:>pw$.0}%", v * 100.0, pw = w.saturating_sub(1)),
        // The row value is a processors-per-node count; the node count is
        // the (fixed) base machine's.
        RowFmt::NodesByProcs => {
            format!("{:>w$}", format!("{}x{}", spec.machine.nodes, v as u64))
        }
    }
}

/// A grid column header for one column-axis value.
fn col_header(cols: &Sweep, v: f64) -> String {
    match cols.axis {
        Axis::ProcessorsPerNode => format!("{} procs", v as u64),
        Axis::Nodes => format!("{} nodes", v as u64),
        Axis::Skew => format!("skew {v}"),
        Axis::ErrorRate => format!("{:.0}%", v * 100.0),
        Axis::ConcurrentQueries => format!("{} queries", v as u64),
        Axis::MemoryPerNode => format!("{} MB", v as u64),
        Axis::FailureTime => format!("fail at {v}s"),
        Axis::FailedNodes => format!("{} failed", v as u64),
        Axis::ArrivalRate => format!("{v} qps"),
        Axis::Burstiness => format!("burst {v:.2}"),
        Axis::TemplateSkew => format!("t-skew {v:.2}"),
    }
}

/// A latency-summary object: sample count, mean and estimated percentiles.
fn summary_json(s: &LatencySummary) -> Json {
    object(vec![
        ("count", Json::from(s.count)),
        ("mean_secs", Json::Float(s.mean)),
        ("p50_secs", Json::Float(s.p50)),
        ("p95_secs", Json::Float(s.p95)),
        ("p99_secs", Json::Float(s.p99)),
        ("max_secs", Json::Float(s.max)),
    ])
}

/// Renders a report as a machine-readable JSON document: scenario identity
/// plus one record per (point × strategy).
pub fn render_json(report: &ScenarioReport) -> String {
    let spec = &report.spec;
    let frontend = is_frontend(spec);
    let mut records: Vec<Json> = Vec::new();
    for point in &report.points {
        for cell in &point.cells {
            let mut members = vec![
                ("row", Json::Float(point.row)),
                ("col", point.col.map_or(Json::Null, Json::Float)),
                ("strategy", Json::Str(cell.strategy.label())),
            ];
            // One member per declared policy parameter (FP's error_rate,
            // Diffusion's radius, ...), so cells of parameterized policies
            // always carry their exact settings.
            for (i, spec) in cell.strategy.policy().params().iter().enumerate() {
                members.push((spec.name, Json::Float(cell.strategy.params().0[i])));
            }
            members.extend([
                ("value", Json::Float(cell.value)),
                ("plans", Json::from(cell.summary.plans)),
                (
                    "mean_response_secs",
                    Json::Float(cell.summary.mean_response_secs),
                ),
                (
                    "mean_idle_fraction",
                    Json::Float(cell.summary.mean_idle_fraction),
                ),
                ("total_lb_bytes", Json::from(cell.summary.total_lb_bytes)),
                ("total_messages", Json::from(cell.summary.total_messages)),
            ]);
            if let Some(mix) = &cell.mix {
                members.extend([
                    ("mix_policy", Json::from(mix.policy.label())),
                    ("mix_mode", Json::from(mix.mode.label())),
                    (
                        "mix_mean_response_secs",
                        Json::Float(mix.mean_response_secs),
                    ),
                    ("mix_makespan_secs", Json::Float(mix.makespan_secs)),
                    ("mix_mean_slowdown", Json::Float(mix.mean_slowdown)),
                    ("mix_mean_wait_secs", Json::Float(mix.mean_wait_secs)),
                    (
                        "mix_queries",
                        Json::Array(
                            mix.queries
                                .iter()
                                .map(|q| {
                                    object(vec![
                                        ("query", Json::from(q.query)),
                                        ("node", q.node.map_or(Json::Null, Json::from)),
                                        ("arrival_secs", Json::Float(q.arrival_secs)),
                                        ("wait_secs", Json::Float(q.wait_secs)),
                                        ("response_secs", Json::Float(q.response_secs)),
                                        ("solo_secs", Json::Float(q.solo_secs)),
                                        ("slowdown", Json::Float(q.slowdown)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]);
                // Co-simulated cells also carry the composed (analytic)
                // contrast: its mean response and the cosim/composed ratio.
                if let Some(composed) = &cell.mix_composed {
                    members.push((
                        "mix_composed_mean_response_secs",
                        Json::Float(composed.mean_response_secs),
                    ));
                    if let Some(ratio) = vs_composed(cell) {
                        members.push(("mix_vs_composed_response", Json::Float(ratio)));
                    }
                }
                // Faulted cells carry the degradation accounting of the
                // injected topology events, the fault-free contrast and the
                // per-query response inflation (faulted / clean, by mix
                // index).
                if let Some(f) = cell.faults {
                    members.push((
                        "fault_stats",
                        object(vec![
                            ("failures", Json::from(f.failures)),
                            ("drains", Json::from(f.drains)),
                            ("joins", Json::from(f.joins)),
                            ("rebalance_bytes", Json::from(f.rebalance_bytes)),
                            ("activations_rehomed", Json::from(f.activations_rehomed)),
                            ("tuples_rehomed", Json::from(f.tuples_rehomed)),
                            ("tuples_lost", Json::from(f.tuples_lost)),
                            ("tuples_redone", Json::from(f.tuples_redone)),
                            ("operators_restarted", Json::from(f.operators_restarted)),
                        ]),
                    ));
                }
                if let Some(clean) = &cell.mix_fault_free {
                    members.push((
                        "mix_fault_free_mean_response_secs",
                        Json::Float(clean.mean_response_secs),
                    ));
                    if let Some(ratio) = vs_clean(cell) {
                        members.push(("mix_vs_fault_free_response", Json::Float(ratio)));
                    }
                    members.push((
                        "mix_query_response_inflation",
                        Json::Array(
                            mix.queries
                                .iter()
                                .zip(&clean.queries)
                                .map(|(q, c)| {
                                    if c.response_secs > 0.0 {
                                        Json::Float(q.response_secs / c.response_secs)
                                    } else {
                                        Json::Null
                                    }
                                })
                                .collect(),
                        ),
                    ));
                }
            }
            // Open cells carry the arrival stream's throughput and the
            // response / wait / slowdown latency summaries (plus per-class
            // response summaries when priorities are in play).
            if let Some(open) = &cell.open {
                members.extend([
                    ("open_completed", Json::from(open.completed)),
                    ("open_peak_live", Json::from(open.peak_live)),
                    ("open_throughput_qps", Json::Float(open.throughput_qps)),
                ]);
                // Summaries of histograms that recorded no samples are
                // omitted rather than emitted as all-zero objects.
                if let Some(s) = open.response_summary() {
                    members.push(("open_response", summary_json(&s)));
                }
                if let Some(s) = open.wait_summary() {
                    members.push(("open_wait", summary_json(&s)));
                }
                if let Some(s) = open.slowdown_summary() {
                    members.push(("open_slowdown", summary_json(&s)));
                }
                // Front-end accounting: where each completed request was
                // answered, plus the derived hit ratio and effective-QPS
                // multiplier, and the per-outcome response summaries.
                if frontend {
                    let f = &open.frontend;
                    members.push((
                        "open_frontend",
                        object(vec![
                            ("cache_hits", Json::from(f.cache_hits)),
                            ("cache_stale", Json::from(f.cache_stale)),
                            ("cache_evictions", Json::from(f.cache_evictions)),
                            ("cache_misses", Json::from(f.cache_misses)),
                            ("cache_bypass", Json::from(f.cache_bypass)),
                            ("coalesced", Json::from(f.coalesced)),
                            ("engine_queries", Json::from(f.engine_queries)),
                            ("hit_ratio", Json::Float(open.hit_ratio())),
                            ("qps_multiplier", Json::Float(open.qps_multiplier())),
                        ]),
                    ));
                    if let Some(s) = open.response_engine.summary() {
                        members.push(("open_response_engine", summary_json(&s)));
                    }
                    if let Some(s) = open.response_cache_hit.summary() {
                        members.push(("open_response_cache_hit", summary_json(&s)));
                    }
                    if let Some(s) = open.response_coalesced.summary() {
                        members.push(("open_response_coalesced", summary_json(&s)));
                    }
                }
                let classes = open.class_summaries();
                if classes.len() > 1 {
                    members.push((
                        "open_response_by_class",
                        Json::Array(
                            classes
                                .iter()
                                .map(|(class, s)| {
                                    object(vec![
                                        ("class", Json::from(*class)),
                                        ("response", summary_json(s)),
                                    ])
                                })
                                .collect(),
                        ),
                    ));
                }
            }
            records.push(object(members));
        }
    }
    object(vec![
        ("scenario", Json::from(spec.name.as_str())),
        ("title", Json::from(spec.title.as_str())),
        ("machine", serde::machine_to_json(&spec.machine)),
        ("workload", serde::workload_to_json(&spec.workload)),
        ("axis", Json::from(serde::axis_name(spec.rows.axis))),
        (
            "columns",
            spec.columns
                .as_ref()
                .map_or(Json::Null, |c| Json::from(serde::axis_name(c.axis))),
        ),
        ("metric", serde::metric_to_json(spec.metric)),
        ("reference", serde::reference_to_json(&spec.reference)),
        ("points", Json::Array(records)),
    ])
    .pretty()
}

/// Renders a report as CSV: one line per (point × strategy). The trailing
/// mix columns are empty for non-mix scenarios, and the co-simulation
/// contrast column only fills for co-simulated mixes. Reports whose mix
/// injects topology events gain trailing fault columns (inflation against
/// the fault-free run plus rebalance/loss/redo counters); fault-free
/// reports keep the historical header byte-identical.
pub fn render_csv(report: &ScenarioReport) -> String {
    let faulted = is_faulted(&report.spec);
    let open = is_open(&report.spec);
    let frontend = is_frontend(&report.spec);
    let mut out = String::from(
        "row,col,strategy,value,plans,mean_response_secs,mean_idle_fraction,\
         total_lb_bytes,total_messages,mix_policy,mix_mode,mix_mean_response_secs,\
         mix_makespan_secs,mix_mean_slowdown,mix_mean_wait_secs,mix_vs_composed_response",
    );
    if faulted {
        out.push_str(
            ",mix_vs_fault_free_response,fault_rebalance_bytes,fault_tuples_lost,\
             fault_tuples_redone",
        );
    }
    if open {
        out.push_str(
            ",open_completed,open_peak_live,open_throughput_qps,open_p50_secs,\
             open_p95_secs,open_p99_secs,open_mean_wait_secs,open_mean_slowdown",
        );
    }
    if frontend {
        out.push_str(",open_hit_ratio,open_qps_multiplier,open_coalesced,open_engine_queries");
    }
    out.push('\n');
    for point in &report.points {
        for cell in &point.cells {
            let col = point.col.map_or(String::new(), |c| c.to_string());
            let mix = cell.mix.as_ref().map_or(",,,,,,".to_string(), |m| {
                format!(
                    "{},{},{},{},{},{},{}",
                    m.policy.label(),
                    m.mode.label(),
                    m.mean_response_secs,
                    m.makespan_secs,
                    m.mean_slowdown,
                    m.mean_wait_secs,
                    vs_composed(cell).map_or(String::new(), |r| r.to_string())
                )
            });
            let faults = if faulted {
                let inflation = vs_clean(cell).map_or(String::new(), |r| r.to_string());
                match cell.faults {
                    Some(f) => format!(
                        ",{inflation},{},{},{}",
                        f.rebalance_bytes, f.tuples_lost, f.tuples_redone
                    ),
                    None => format!(",{inflation},,,"),
                }
            } else {
                String::new()
            };
            let open_cols = if open {
                match &cell.open {
                    Some(o) => {
                        let s = o.response_summary();
                        let quant = |pick: fn(&LatencySummary) -> f64| {
                            s.as_ref().map_or(String::new(), |s| pick(s).to_string())
                        };
                        format!(
                            ",{},{},{},{},{},{},{},{}",
                            o.completed,
                            o.peak_live,
                            o.throughput_qps,
                            quant(|s| s.p50),
                            quant(|s| s.p95),
                            quant(|s| s.p99),
                            o.wait.mean(),
                            o.slowdown.mean()
                        )
                    }
                    None => ",,,,,,,,".to_string(),
                }
            } else {
                String::new()
            };
            let frontend_cols = if frontend {
                match &cell.open {
                    Some(o) => format!(
                        ",{},{},{},{}",
                        o.hit_ratio(),
                        o.qps_multiplier(),
                        o.frontend.coalesced,
                        o.frontend.engine_queries
                    ),
                    None => ",,,,".to_string(),
                }
            } else {
                String::new()
            };
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{}{}{}{}",
                point.row,
                col,
                cell.strategy.label(),
                cell.value,
                cell.summary.plans,
                cell.summary.mean_response_secs,
                cell.summary.mean_idle_fraction,
                cell.summary.total_lb_bytes,
                cell.summary.total_messages,
                mix,
                faults,
                open_cols,
                frontend_cols
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::{run_scenario, ScenarioSpec};
    use super::*;
    use dlb_common::json::Json;
    use dlb_exec::Strategy;

    fn tiny_report() -> ScenarioReport {
        let spec = ScenarioSpec::builder("tiny")
            .title("Tiny")
            .description("render smoke test")
            .machine(1, 2)
            .strategies([Strategy::dynamic(), Strategy::fixed(0.0)])
            .rows(super::super::Axis::ProcessorsPerNode, [1.0, 2.0])
            .reference(super::super::Reference::SamePoint(Strategy::dynamic()))
            .notes("note line")
            .build()
            .unwrap()
            .with_generated_workload(1, 3, 0.005, 3);
        run_scenario(&spec).unwrap()
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(fmt_ratio(f64::NAN), "   n/a");
        assert_eq!(fmt_ratio(1.25), " 1.250");
    }

    #[test]
    fn text_rendering_has_banner_table_and_notes() {
        let text = render_text(&tiny_report());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "=".repeat(64));
        assert_eq!(lines[1], "Tiny — render smoke test");
        assert!(lines[2].starts_with("workload: 1 queries x 3 relations"));
        assert!(lines[4].contains("DP") && lines[4].contains("FP"));
        assert_eq!(*lines.last().unwrap(), "note line");
        // Two data rows, DP column pinned at 1.000 (it is the reference).
        assert!(lines[5].trim_start().starts_with('1'));
        assert!(lines[5].contains("1.000"));
    }

    #[test]
    fn json_rendering_is_parseable_and_complete() {
        let report = tiny_report();
        let doc = Json::parse(&render_json(&report)).unwrap();
        assert_eq!(doc.get("scenario").unwrap().as_str(), Some("tiny"));
        let points = doc.get("points").unwrap().as_array().unwrap();
        // 2 rows × 2 strategies.
        assert_eq!(points.len(), 4);
        for p in points {
            assert!(p.get("value").unwrap().as_f64().is_some());
            assert!(p.get("strategy").unwrap().as_str().is_some());
        }
    }

    #[test]
    fn csv_rendering_has_one_line_per_cell() {
        let report = tiny_report();
        let csv = render_csv(&report);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + 4);
        assert!(lines[0].starts_with("row,col,strategy,value"));
        assert!(lines[1].starts_with("1,,DP,"));
    }
}
