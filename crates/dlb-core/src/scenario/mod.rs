//! Declarative scenario API: typed, serializable experiment descriptions and
//! a single driver that runs them.
//!
//! The paper's evaluation (§5) is a grid of scenarios — strategy × skew ×
//! machine shape × workload. Instead of one hand-rolled binary per figure,
//! a [`ScenarioSpec`] describes a scenario declaratively: machine shape,
//! workload, execution options, strategy set, up to two sweep
//! [`Axis`]es, the [`Reference`] each run is measured against, the
//! [`Metric`], and a [`Presentation`]. The bundled [`registry`] expresses
//! every figure of the paper as a spec; arbitrary specs are built with
//! [`ScenarioSpec::builder`] or loaded from JSON files
//! ([`ScenarioSpec::from_json`]), which is how the evaluation grows new
//! workloads without new code.
//!
//! [`run_scenario`] owns the whole execution: it expands the sweep grid,
//! fans points out across worker threads, shares one workspace-level
//! [`RunCache`] across every point (so e.g. a reference strategy is
//! simulated once per machine shape, not once per row), and returns a
//! [`ScenarioReport`] that renders to the figure's exact text table
//! ([`render_text`]) or to machine-readable JSON/CSV ([`render_json`],
//! [`render_csv`]).

mod registry;
mod render;
mod serde;
mod spec;

pub use registry::{find, names, registry};
pub use render::{fmt_ratio, render_csv, render_json, render_text};
pub use spec::{
    Axis, MachineSpec, Metric, Presentation, Reference, RowFmt, ScenarioSpec, ScenarioSpecBuilder,
    Sweep, TableStyle, WorkloadSpec,
};

use crate::experiment::{Experiment, PlanRun, RunCache};
use crate::summary::{relative_performance, speedup, Summary};
use crate::system::HierarchicalSystem;
use crate::workload::CompiledWorkload;
use dlb_common::{QueryId, RelationId, Result};
use dlb_exec::{ExecOptions, Strategy};
use dlb_query::generator::WorkloadParams;
use dlb_query::jointree::JoinTree;
use dlb_query::optree::OperatorTree;
use dlb_query::plan::{ChainScheduling, OperatorHomes, ParallelPlan};
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// One measured strategy at one sweep point.
#[derive(Debug, Clone)]
pub struct StrategyCell {
    /// The strategy actually executed (error-rate axes materialize here).
    pub strategy: Strategy,
    /// The per-plan runs (shared with the scenario's run cache).
    pub runs: Arc<Vec<PlanRun>>,
    /// Aggregate statistics of the runs.
    pub summary: Summary,
    /// The spec's metric evaluated against the spec's reference.
    pub value: f64,
}

/// All strategies measured at one sweep point.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// The row-axis value.
    pub row: f64,
    /// The column-axis value (grids only).
    pub col: Option<f64>,
    /// One cell per strategy, in spec order.
    pub cells: Vec<StrategyCell>,
}

/// Shape of a compiled chain plan (chain workloads only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainShape {
    /// Total operators of the plan.
    pub operators: usize,
    /// Number of pipeline chains.
    pub chains: usize,
    /// Length of the longest chain, in operators.
    pub longest_chain: usize,
}

/// The outcome of [`run_scenario`]: every point of the sweep grid in
/// row-major order, ready for rendering.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// The spec that produced this report.
    pub spec: ScenarioSpec,
    /// Results in row-major order (`rows.values × columns.values`).
    pub points: Vec<PointResult>,
    /// The compiled chain shape (chain workloads only).
    pub chain: Option<ChainShape>,
}

/// Runs a scenario: expands the sweep grid, executes every (point ×
/// strategy) run with one shared [`RunCache`], computes the reference
/// metric, and returns the report.
///
/// Points are independent and are fanned out across worker threads (they
/// share the worker budget with the per-plan fan-out of
/// [`Experiment::run`]); results are gathered in grid order, so rendering is
/// bit-identical whatever the thread count.
pub fn run_scenario(spec: &ScenarioSpec) -> Result<ScenarioReport> {
    spec.validate()?;
    let cache = Arc::new(RunCache::new());

    let col_values: Vec<Option<f64>> = match &spec.columns {
        Some(cols) => cols.values.iter().copied().map(Some).collect(),
        None => vec![None],
    };
    let grid: Vec<(f64, Option<f64>)> = spec
        .rows
        .values
        .iter()
        .flat_map(|&row| col_values.iter().map(move |&col| (row, col)))
        .collect();

    // Workloads depend on the system only through its node count (operator
    // homes) and the cost configuration (constant across a sweep), so they
    // are compiled once per distinct node count, up front.
    let mut workloads: HashMap<u32, (Arc<CompiledWorkload>, Option<ChainShape>)> = HashMap::new();
    for &(row, col) in &grid {
        let (machine, options) = point_config(spec, row, col);
        if let std::collections::hash_map::Entry::Vacant(slot) = workloads.entry(machine.nodes) {
            let system =
                HierarchicalSystem::hierarchical(machine.nodes, machine.processors_per_node)
                    .with_options(options);
            slot.insert(compile_workload(&spec.workload, &system)?);
        }
    }

    // Execute the grid: every (point × strategy) run, plus the same-point
    // reference when one is configured.
    type RawPoint = (
        Vec<(Strategy, Arc<Vec<PlanRun>>)>,
        Option<Arc<Vec<PlanRun>>>,
    );
    let raw: Result<Vec<RawPoint>> = grid
        .par_iter()
        .map(|&(row, col)| {
            let (machine, options) = point_config(spec, row, col);
            let system =
                HierarchicalSystem::hierarchical(machine.nodes, machine.processors_per_node)
                    .with_options(options);
            let workload = Arc::clone(&workloads[&machine.nodes].0);
            let experiment = Experiment::with_cache(system, workload, Arc::clone(&cache));
            let runs: Result<Vec<(Strategy, Arc<Vec<PlanRun>>)>> = spec
                .strategies
                .iter()
                .map(|&s| {
                    let s = strategy_at(s, spec, row, col);
                    experiment.run(s).map(|r| (s, r))
                })
                .collect();
            let reference = match spec.reference {
                Reference::SamePoint(r) => Some(experiment.run(strategy_at(r, spec, row, col))?),
                Reference::FirstRow => None,
            };
            Ok((runs?, reference))
        })
        .collect();
    let raw = raw?;

    // Metric pass: resolve each cell's reference and evaluate the metric.
    let ncols = col_values.len();
    let points: Vec<PointResult> = grid
        .iter()
        .enumerate()
        .map(|(idx, &(row, col))| {
            let (runs, same_point_ref) = &raw[idx];
            let cells = runs
                .iter()
                .enumerate()
                .map(|(si, (strategy, r))| {
                    let reference: &Arc<Vec<PlanRun>> = match spec.reference {
                        Reference::SamePoint(_) => {
                            same_point_ref.as_ref().expect("reference was computed")
                        }
                        // Row-major order: the first row's point with the
                        // same column index.
                        Reference::FirstRow => &raw[idx % ncols].0[si].1,
                    };
                    let value = match spec.metric {
                        Metric::Relative => relative_performance(r, reference),
                        Metric::Speedup => speedup(r, reference),
                    };
                    StrategyCell {
                        strategy: *strategy,
                        runs: Arc::clone(r),
                        summary: Summary::from_runs(r),
                        value,
                    }
                })
                .collect();
            PointResult { row, col, cells }
        })
        .collect();

    let chain = workloads
        .values()
        .find_map(|(_, shape)| *shape)
        .filter(|_| matches!(spec.workload, WorkloadSpec::Chain { .. }));

    Ok(ScenarioReport {
        spec: spec.clone(),
        points,
        chain,
    })
}

/// Builds the experiment of a scenario's *base* point (no axis applied):
/// what `bench_report` times.
pub fn base_experiment(spec: &ScenarioSpec) -> Result<Experiment> {
    spec.validate()?;
    let system =
        HierarchicalSystem::hierarchical(spec.machine.nodes, spec.machine.processors_per_node)
            .with_options(spec.options);
    let (workload, _) = compile_workload(&spec.workload, &system)?;
    Ok(Experiment::with_cache(
        system,
        workload,
        Arc::new(RunCache::new()),
    ))
}

/// The machine shape and options in force at one sweep point.
fn point_config(spec: &ScenarioSpec, row: f64, col: Option<f64>) -> (MachineSpec, ExecOptions) {
    let mut machine = spec.machine;
    let mut options = spec.options;
    let mut apply = |axis: Axis, v: f64| match axis {
        Axis::Skew => options.skew = v,
        Axis::Nodes => machine.nodes = v as u32,
        Axis::ProcessorsPerNode => machine.processors_per_node = v as u32,
        Axis::ErrorRate => {} // applied to the strategies, not the machine
    };
    apply(spec.rows.axis, row);
    if let (Some(cols), Some(v)) = (&spec.columns, col) {
        apply(cols.axis, v);
    }
    (machine, options)
}

/// The strategy actually executed at one sweep point: an error-rate axis
/// materializes into every `Strategy::Fixed` of the set.
fn strategy_at(strategy: Strategy, spec: &ScenarioSpec, row: f64, col: Option<f64>) -> Strategy {
    if let Strategy::Fixed { .. } = strategy {
        let rate = if spec.rows.axis == Axis::ErrorRate {
            Some(row)
        } else {
            spec.columns
                .as_ref()
                .filter(|c| c.axis == Axis::ErrorRate)
                .and(col)
        };
        if let Some(error_rate) = rate {
            return Strategy::Fixed { error_rate };
        }
    }
    strategy
}

/// Compiles the workload of a spec for one system.
fn compile_workload(
    workload: &WorkloadSpec,
    system: &HierarchicalSystem,
) -> Result<(Arc<CompiledWorkload>, Option<ChainShape>)> {
    match *workload {
        WorkloadSpec::Generated {
            queries,
            relations,
            scale,
            seed,
        } => {
            let params = WorkloadParams {
                queries,
                relations_per_query: relations,
                scale,
                skew: 0.0,
                seed,
            };
            Ok((Arc::new(CompiledWorkload::generate(params, system)?), None))
        }
        WorkloadSpec::Chain {
            relations,
            build_rows,
            probe_rows,
        } => {
            let (workload, shape) =
                chain_workload(relations, build_rows, probe_rows, system.nodes())?;
            Ok((Arc::new(workload), Some(shape)))
        }
    }
}

/// Builds the §5.3 pipeline-chain workload: a right-deep join tree over
/// `relations` relations — every hash table is built from a base relation
/// and the probing relation streams through `relations - 1` probes, one
/// maximum pipeline chain.
fn chain_workload(
    relations: usize,
    build_rows: u64,
    probe_rows: u64,
    nodes: u32,
) -> Result<(CompiledWorkload, ChainShape)> {
    // Selectivity keeping every intermediate result at ~probe_rows.
    let sel = 1.0 / build_rows.max(1) as f64;
    let mut tree = JoinTree::leaf(RelationId::new(relations as u32 - 1), probe_rows);
    for i in (0..relations as u32 - 1).rev() {
        tree = JoinTree::join(JoinTree::leaf(RelationId::new(i), build_rows), tree, sel);
    }
    let optree = OperatorTree::from_join_tree(&tree);
    let homes = OperatorHomes::all_nodes(&optree, nodes);
    let plan = ParallelPlan::build(
        QueryId::new(100),
        optree,
        homes,
        ChainScheduling::OneAtATime,
    )?;
    let shape = ChainShape {
        operators: plan.tree.operators().len(),
        chains: plan.chains().len(),
        longest_chain: plan.chains().iter().map(|c| c.len()).max().unwrap_or(0),
    };
    Ok((CompiledWorkload::from_plans(vec![plan]), shape))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(spec: ScenarioSpec) -> ScenarioSpec {
        spec.with_generated_workload(1, 4, 0.005, 11)
    }

    #[test]
    fn run_scenario_covers_the_grid_in_row_major_order() {
        let spec = tiny(
            ScenarioSpec::builder("grid")
                .machine(1, 2)
                .strategies([Strategy::Fixed { error_rate: 0.0 }])
                .rows(Axis::ErrorRate, [0.0, 0.3])
                .columns(Axis::ProcessorsPerNode, [2.0, 4.0])
                .reference(Reference::SamePoint(Strategy::Dynamic))
                .build()
                .unwrap(),
        );
        let report = run_scenario(&spec).unwrap();
        assert_eq!(report.points.len(), 4);
        let coords: Vec<(f64, Option<f64>)> =
            report.points.iter().map(|p| (p.row, p.col)).collect();
        assert_eq!(
            coords,
            vec![
                (0.0, Some(2.0)),
                (0.0, Some(4.0)),
                (0.3, Some(2.0)),
                (0.3, Some(4.0))
            ]
        );
        // The error-rate axis materialized into the FP strategy.
        assert_eq!(
            report.points[2].cells[0].strategy,
            Strategy::Fixed { error_rate: 0.3 }
        );
        for p in &report.points {
            assert!(p.cells[0].value.is_finite());
            assert_eq!(p.cells[0].summary.plans, p.cells[0].runs.len());
        }
    }

    #[test]
    fn first_row_reference_pins_every_strategy_to_its_own_baseline() {
        let spec = tiny(
            ScenarioSpec::builder("speedup")
                .machine(1, 1)
                .strategies([Strategy::Dynamic, Strategy::Fixed { error_rate: 0.0 }])
                .rows(Axis::ProcessorsPerNode, [1.0, 4.0])
                .reference(Reference::FirstRow)
                .metric(Metric::Speedup)
                .build()
                .unwrap(),
        );
        let report = run_scenario(&spec).unwrap();
        // The first row IS the baseline: speed-up exactly 1 for every
        // strategy.
        for cell in &report.points[0].cells {
            assert!((cell.value - 1.0).abs() < 1e-12, "got {}", cell.value);
        }
        // More processors never slow the tiny workload down.
        for cell in &report.points[1].cells {
            assert!(cell.value >= 0.9, "speedup {}", cell.value);
        }
    }

    #[test]
    fn scenario_points_share_one_cache() {
        // DP is both measured and the same-point reference: each point must
        // reuse the measured run for the reference (one simulation, shared
        // allocation).
        let spec = tiny(
            ScenarioSpec::builder("shared")
                .machine(2, 2)
                .strategies([Strategy::Dynamic])
                .rows(Axis::Skew, [0.0, 0.5])
                .reference(Reference::SamePoint(Strategy::Dynamic))
                .build()
                .unwrap(),
        );
        let report = run_scenario(&spec).unwrap();
        for p in &report.points {
            assert!((p.cells[0].value - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn chain_workloads_report_their_shape() {
        let spec = ScenarioSpec::builder("chain")
            .machine(2, 2)
            .workload(WorkloadSpec::Chain {
                relations: 3,
                build_rows: 500,
                probe_rows: 1_500,
            })
            .strategies([Strategy::Dynamic, Strategy::Fixed { error_rate: 0.0 }])
            .rows(Axis::Skew, [0.8])
            .presentation(Presentation::Chain)
            .build()
            .unwrap();
        let report = run_scenario(&spec).unwrap();
        let shape = report.chain.unwrap();
        assert_eq!(shape.longest_chain, 3);
        assert!(shape.operators >= 5);
        assert_eq!(report.points.len(), 1);
        assert_eq!(report.points[0].cells.len(), 2);
        for cell in &report.points[0].cells {
            assert_eq!(cell.runs.len(), 1, "chain workloads have one plan");
        }
    }

    #[test]
    fn base_experiment_matches_the_spec_machine() {
        let exp = base_experiment(&tiny(registry::paper_base())).unwrap();
        assert_eq!(exp.system().nodes(), 4);
        assert_eq!(exp.system().processors_per_node(), 8);
        assert!(!exp.workload().is_empty());
    }
}
