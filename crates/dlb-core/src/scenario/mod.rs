//! Declarative scenario API: typed, serializable experiment descriptions and
//! a single driver that runs them.
//!
//! The paper's evaluation (§5) is a grid of scenarios — strategy × skew ×
//! machine shape × workload. Instead of one hand-rolled binary per figure,
//! a [`ScenarioSpec`] describes a scenario declaratively: machine shape,
//! workload, execution options, strategy set, up to two sweep
//! [`Axis`]es, the [`Reference`] each run is measured against, the
//! [`Metric`], and a [`Presentation`]. The bundled [`registry`] expresses
//! every figure of the paper as a spec; arbitrary specs are built with
//! [`ScenarioSpec::builder`] or loaded from JSON files
//! ([`ScenarioSpec::from_json`]), which is how the evaluation grows new
//! workloads without new code.
//!
//! [`run_scenario`] owns the whole execution: it expands the sweep grid,
//! fans points out across worker threads, shares one workspace-level
//! [`RunCache`] across every point (so e.g. a reference strategy is
//! simulated once per machine shape, not once per row), and returns a
//! [`ScenarioReport`] that renders to the figure's exact text table
//! ([`render_text`]) or to machine-readable JSON/CSV ([`render_json`],
//! [`render_csv`]).
//!
//! Beyond the paper's single-query-at-a-time figures, a
//! [`WorkloadSpec::Mix`] workload describes an *inter-query* scenario: N
//! concurrent queries with arrival offsets, priorities and per-query skew
//! profiles, scheduled onto the shared SM-nodes by an admission/placement
//! policy (see [`dlb_exec::mix`]). Mix scenarios sweep the new
//! [`Axis::ConcurrentQueries`] and [`Axis::MemoryPerNode`] axes, and their
//! cells carry the per-query schedule ([`StrategyCell::mix`]).
//!
//! Co-simulated mixes additionally support **fault injection**: a
//! [`MixSpec`] may carry a deterministic topology-event stream (node
//! failures, drains and re-joins at fixed simulated times, see
//! [`dlb_exec::topology`]), swept with [`Axis::FailureTime`] (when does the
//! node die) or [`Axis::FailedNodes`] (how much of the machine dies).
//! Faulted cells carry the degradation accounting
//! ([`StrategyCell::faults`]) and the fault-free schedule of the same mix
//! ([`StrategyCell::mix_fault_free`]) for response-inflation contrasts.
//!
//! A [`WorkloadSpec::Open`] workload runs the engine as an *open system*:
//! queries arrive over a seeded stochastic process (`dlb-traffic`), wait in
//! a FCFS admission queue for one of `concurrency` lane slots, and retire on
//! completion, streaming their latencies into constant-size sketches. Open
//! scenarios sweep [`Axis::ArrivalRate`] and [`Axis::Burstiness`], and their
//! cells carry the percentile report ([`StrategyCell::open`]).

mod registry;
mod render;
mod serde;
mod spec;

pub use registry::{export, find, names, registry};
pub use render::{fmt_ratio, render_csv, render_json, render_text};
pub use spec::{
    Axis, MachineSpec, Metric, MixSpec, OpenSpec, Presentation, Reference, RowFmt, ScenarioSpec,
    ScenarioSpecBuilder, Sweep, TableStyle, WorkloadSpec,
};

use crate::experiment::{Experiment, PlanRun, RunCache};
use crate::summary::{relative_performance, speedup, Summary};
use crate::system::HierarchicalSystem;
use crate::workload::{CompiledWorkload, QueryMix};
use dlb_common::{QueryId, RelationId, Result};
use dlb_exec::{
    ExecOptions, FaultStats, MixMode, MixPolicy, MixSchedule, OpenReport, Strategy, TopologyEvent,
};
use dlb_query::generator::WorkloadParams;
use dlb_query::jointree::JoinTree;
use dlb_query::optree::OperatorTree;
use dlb_query::plan::{ChainScheduling, OperatorHomes, ParallelPlan};
use dlb_traffic::ArrivalSpec;
use rayon::prelude::*;
use std::sync::Arc;

/// One measured strategy at one sweep point.
#[derive(Debug, Clone)]
pub struct StrategyCell {
    /// The strategy actually executed (error-rate axes materialize here).
    pub strategy: Strategy,
    /// The per-plan runs (shared with the scenario's run cache). For mix
    /// workloads these are the per-query *solo* runs the schedule was
    /// derived from.
    pub runs: Arc<Vec<PlanRun>>,
    /// Aggregate statistics of the runs.
    pub summary: Summary,
    /// The spec's metric evaluated against the spec's reference.
    pub value: f64,
    /// The inter-query schedule of this strategy at this point (mix
    /// workloads only): per-query and aggregate response times under
    /// shared-node contention.
    pub mix: Option<MixSchedule>,
    /// The analytic (composed) schedule of the same mix, carried alongside
    /// a co-simulated `mix` schedule so renderings can contrast the two
    /// fidelities. `None` for composed-mode and non-mix cells.
    pub mix_composed: Option<MixSchedule>,
    /// Degradation accounting of the injected topology events. `Some`
    /// exactly for cells of a mix carrying a non-empty topology stream.
    pub faults: Option<FaultStats>,
    /// The fault-free schedule of the *same* mix (same queries, same
    /// placements, no topology events), carried alongside a faulted `mix`
    /// schedule so renderings can report per-query response inflation.
    pub mix_fault_free: Option<MixSchedule>,
    /// The open-system report of this strategy at this point (open workloads
    /// only): latency percentiles, admission waits, slowdowns and achieved
    /// throughput over the whole arrival stream. For open cells `runs` holds
    /// the per-template *solo* runs the slowdown baseline came from.
    pub open: Option<OpenReport>,
}

/// All strategies measured at one sweep point.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// The row-axis value.
    pub row: f64,
    /// The column-axis value (grids only).
    pub col: Option<f64>,
    /// One cell per strategy, in spec order.
    pub cells: Vec<StrategyCell>,
}

/// Shape of a compiled chain plan (chain workloads only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainShape {
    /// Total operators of the plan.
    pub operators: usize,
    /// Number of pipeline chains.
    pub chains: usize,
    /// Length of the longest chain, in operators.
    pub longest_chain: usize,
}

/// The outcome of [`run_scenario`]: every point of the sweep grid in
/// row-major order, ready for rendering.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// The spec that produced this report.
    pub spec: ScenarioSpec,
    /// Results in row-major order (`rows.values × columns.values`).
    pub points: Vec<PointResult>,
    /// The compiled chain shape (chain workloads only).
    pub chain: Option<ChainShape>,
}

/// Runs a scenario: expands the sweep grid, executes every (point ×
/// strategy) run with one shared [`RunCache`], computes the reference
/// metric, and returns the report.
///
/// Points are independent and are fanned out across worker threads (they
/// share the worker budget with the per-plan fan-out of
/// [`Experiment::run`]); results are gathered in grid order, so rendering is
/// bit-identical whatever the thread count.
pub fn run_scenario(spec: &ScenarioSpec) -> Result<ScenarioReport> {
    spec.validate()?;
    let cache = Arc::new(RunCache::new());

    let col_values: Vec<Option<f64>> = match &spec.columns {
        Some(cols) => cols.values.iter().copied().map(Some).collect(),
        None => vec![None],
    };
    let grid: Vec<(f64, Option<f64>)> = spec
        .rows
        .values
        .iter()
        .flat_map(|&row| col_values.iter().map(move |&col| (row, col)))
        .collect();

    // Workloads depend on the system only through its node count (operator
    // homes) and the cost configuration (constant across a sweep), and on
    // the axis-resolved workload parameters (a concurrent-queries sweep
    // resizes a mix per point), so they are compiled once per distinct
    // (node count, effective workload), up front.
    type Compiled = (Arc<CompiledWorkload>, Option<ChainShape>);
    let mut compiled: Vec<((u32, WorkloadSpec), Compiled)> = Vec::new();
    for &(row, col) in &grid {
        let (machine, options, workload) = point_config(spec, row, col);
        let key = (machine.nodes, workload);
        if !compiled.iter().any(|(k, _)| *k == key) {
            let system = point_system(&machine, options);
            let c = compile_workload(&key.1, &system)?;
            compiled.push((key, c));
        }
    }
    let lookup = |nodes: u32, workload: &WorkloadSpec| -> &Compiled {
        compiled
            .iter()
            .find(|(k, _)| k.0 == nodes && k.1 == *workload)
            .map(|(_, c)| c)
            .expect("every point's workload was compiled")
    };

    // Execute the grid: every (point × strategy) run, plus the same-point
    // reference when one is configured. Mix workloads run through the
    // inter-query scheduler; their cells carry the schedule (plus, in
    // co-simulated mode, the composed contrast schedule) alongside the
    // per-query solo runs.
    type RawCell = (
        Strategy,
        Arc<Vec<PlanRun>>,
        Option<MixSchedule>,
        Option<MixSchedule>,
        Option<FaultStats>,
        Option<MixSchedule>,
        Option<OpenReport>,
    );
    type RawPoint = (
        Vec<RawCell>,
        Option<(Arc<Vec<PlanRun>>, Option<MixSchedule>, Option<OpenReport>)>,
    );
    let raw: Result<Vec<RawPoint>> = grid
        .par_iter()
        .map(|&(row, col)| {
            let (machine, options, workload_spec) = point_config(spec, row, col);
            let system = point_system(&machine, options);
            let (workload, _) = lookup(machine.nodes, &workload_spec);
            let experiment =
                Experiment::with_cache(system, Arc::clone(workload), Arc::clone(&cache));
            let mix: Option<(QueryMix, MixPolicy, MixMode, Vec<TopologyEvent>)> =
                match &workload_spec {
                    WorkloadSpec::Mix(m) => Some((
                        QueryMix::new(Arc::clone(workload), m.entries(m.queries, options.skew))?,
                        m.policy,
                        m.mode,
                        m.topology.clone(),
                    )),
                    _ => None,
                };
            let open: Option<(ArrivalSpec, usize, dlb_exec::FrontendConfig)> = match &workload_spec
            {
                WorkloadSpec::Open(o) => Some((o.arrivals(), o.concurrency, o.frontend())),
                _ => None,
            };
            let run_one = |s: Strategy| -> Result<RawCell> {
                if let Some((arrivals, concurrency, frontend)) = &open {
                    let or =
                        experiment.run_open_with_frontend(arrivals, *concurrency, *frontend, s)?;
                    return Ok((s, or.solo, None, None, None, None, Some(or.report)));
                }
                match &mix {
                    None => experiment
                        .run(s)
                        .map(|r| (s, r, None, None, None, None, None)),
                    Some((query_mix, policy, mode, topology)) => {
                        let mr = experiment
                            .run_mix_with_topology(query_mix, *policy, *mode, s, topology)?;
                        Ok((
                            s,
                            mr.solo,
                            Some(mr.schedule),
                            mr.composed,
                            mr.faults,
                            mr.fault_free,
                            None,
                        ))
                    }
                }
            };
            let runs: Result<Vec<RawCell>> = spec
                .strategies
                .iter()
                .map(|&s| run_one(strategy_at(s, spec, row, col)))
                .collect();
            let reference = match spec.reference {
                Reference::SamePoint(r) => {
                    let (_, runs, schedule, _, _, _, open_report) =
                        run_one(strategy_at(r, spec, row, col))?;
                    Some((runs, schedule, open_report))
                }
                Reference::FirstRow => None,
            };
            Ok((runs?, reference))
        })
        .collect();
    let raw = raw?;

    // Metric pass: resolve each cell's reference and evaluate the metric.
    let ncols = col_values.len();
    let points: Vec<PointResult> = grid
        .iter()
        .enumerate()
        .map(|(idx, &(row, col))| {
            let (runs, same_point_ref) = &raw[idx];
            let cells = runs
                .iter()
                .enumerate()
                .map(
                    |(si, (strategy, r, schedule, composed, faults, fault_free, open))| {
                        let (reference, ref_schedule, ref_open): (
                            &Arc<Vec<PlanRun>>,
                            &Option<MixSchedule>,
                            &Option<OpenReport>,
                        ) = match spec.reference {
                            Reference::SamePoint(_) => {
                                let (runs, sched, op) =
                                    same_point_ref.as_ref().expect("reference was computed");
                                (runs, sched, op)
                            }
                            // Row-major order: the first row's point with the
                            // same column index.
                            Reference::FirstRow => {
                                let cell = &raw[idx % ncols].0[si];
                                (&cell.1, &cell.2, &cell.6)
                            }
                        };
                        // Open points compare mean response times of the whole
                        // arrival stream; mix points compare end-to-end
                        // (multi-query) response times; plain points compare
                        // the per-plan runs.
                        let value = match (open, ref_open, schedule, ref_schedule) {
                            (Some(o), Some(ro), ..) => open_metric(spec.metric, o, ro),
                            (_, _, Some(s), Some(rs)) => mix_metric(spec.metric, s, rs),
                            _ => match spec.metric {
                                Metric::Relative => relative_performance(r, reference),
                                Metric::Speedup => speedup(r, reference),
                            },
                        };
                        StrategyCell {
                            strategy: *strategy,
                            runs: Arc::clone(r),
                            summary: Summary::from_runs(r),
                            value,
                            mix: schedule.clone(),
                            mix_composed: composed.clone(),
                            faults: *faults,
                            mix_fault_free: fault_free.clone(),
                            open: open.clone(),
                        }
                    },
                )
                .collect();
            PointResult { row, col, cells }
        })
        .collect();

    let chain = compiled
        .iter()
        .find_map(|(_, (_, shape))| *shape)
        .filter(|_| matches!(spec.workload, WorkloadSpec::Chain { .. }));

    Ok(ScenarioReport {
        spec: spec.clone(),
        points,
        chain,
    })
}

/// Builds the experiment of a scenario's *base* point (no axis applied):
/// what `bench_report` times. For mix workloads this is an experiment over
/// the mix's inner compiled workload.
pub fn base_experiment(spec: &ScenarioSpec) -> Result<Experiment> {
    spec.validate()?;
    let system = point_system(&spec.machine, spec.options);
    let (workload, _) = compile_workload(&spec.workload, &system)?;
    Ok(Experiment::with_cache(
        system,
        workload,
        Arc::new(RunCache::new()),
    ))
}

/// The system of one sweep point: machine shape, optional memory override
/// and execution options.
fn point_system(machine: &MachineSpec, options: ExecOptions) -> HierarchicalSystem {
    let mut system = HierarchicalSystem::hierarchical(machine.nodes, machine.processors_per_node)
        .with_options(options);
    if let Some(mb) = machine.memory_per_node_mb {
        system = system.with_memory_per_node(mb * 1024 * 1024);
    }
    system
}

/// Mean per-query response-time ratio of one mix schedule against a
/// reference schedule (queries are matched by mix index; schedules of
/// different sizes are incomparable and yield NaN — `validate` rejects the
/// spec shapes that could produce them).
fn mix_relative(runs: &MixSchedule, reference: &MixSchedule) -> f64 {
    if runs.queries.len() != reference.queries.len() {
        return f64::NAN;
    }
    let ratios: Vec<f64> = runs
        .queries
        .iter()
        .zip(&reference.queries)
        .filter(|(_, r)| r.response_secs > 0.0)
        .map(|(q, r)| q.response_secs / r.response_secs)
        .collect();
    if ratios.is_empty() {
        return f64::NAN;
    }
    ratios.iter().sum::<f64>() / ratios.len() as f64
}

/// The spec metric evaluated over two open-system reports: the ratio of
/// mean response times over the whole arrival stream (or its inverse for
/// speed-up). Empty streams yield NaN.
fn open_metric(metric: Metric, report: &OpenReport, reference: &OpenReport) -> f64 {
    let ref_mean = reference.response.mean();
    if ref_mean <= 0.0 || ref_mean.is_nan() {
        return f64::NAN;
    }
    let ratio = report.response.mean() / ref_mean;
    match metric {
        Metric::Relative => ratio,
        Metric::Speedup => {
            if ratio > 0.0 {
                1.0 / ratio
            } else {
                f64::NAN
            }
        }
    }
}

/// The spec metric evaluated over two mix schedules.
fn mix_metric(metric: Metric, runs: &MixSchedule, reference: &MixSchedule) -> f64 {
    match metric {
        Metric::Relative => mix_relative(runs, reference),
        Metric::Speedup => {
            let inverse = mix_relative(runs, reference);
            if inverse > 0.0 {
                1.0 / inverse
            } else {
                f64::NAN
            }
        }
    }
}

/// The machine shape, options and effective workload in force at one sweep
/// point.
fn point_config(
    spec: &ScenarioSpec,
    row: f64,
    col: Option<f64>,
) -> (MachineSpec, ExecOptions, WorkloadSpec) {
    let mut machine = spec.machine;
    let mut options = spec.options;
    let mut workload = spec.workload.clone();
    let mut apply = |axis: Axis, v: f64| match axis {
        Axis::Skew => options.skew = v,
        Axis::Nodes => machine.nodes = v as u32,
        Axis::ProcessorsPerNode => machine.processors_per_node = v as u32,
        Axis::ErrorRate => {} // applied to the strategies, not the machine
        Axis::MemoryPerNode => machine.memory_per_node_mb = Some(v as u64),
        Axis::ConcurrentQueries => {
            if let WorkloadSpec::Mix(mix) = &mut workload {
                mix.queries = v as usize;
            }
        }
        // Re-time every event of the base stream to the row value: the same
        // faults strike earlier or later in the mix's life.
        Axis::FailureTime => {
            if let WorkloadSpec::Mix(mix) = &mut workload {
                for ev in &mut mix.topology {
                    ev.at_secs = v;
                }
            }
        }
        // Replace the stream with `v` simultaneous crash failures at the
        // base stream's first event time, taking the highest node indices
        // first (validation guarantees at least one survivor).
        Axis::FailedNodes => {
            if let WorkloadSpec::Mix(mix) = &mut workload {
                let at = mix.topology.first().map_or(0.0, |e| e.at_secs);
                let nodes = machine.nodes as usize;
                mix.topology = (0..v as usize)
                    .map(|i| TopologyEvent::fail(at, nodes - 1 - i))
                    .collect();
            }
        }
        Axis::ArrivalRate => {
            if let WorkloadSpec::Open(open) = &mut workload {
                open.rate_qps = v;
            }
        }
        Axis::Burstiness => {
            if let WorkloadSpec::Open(open) = &mut workload {
                open.burstiness = v;
            }
        }
        Axis::TemplateSkew => {
            if let WorkloadSpec::Open(open) = &mut workload {
                open.template_skew = v;
            }
        }
    };
    apply(spec.rows.axis, row);
    if let (Some(cols), Some(v)) = (&spec.columns, col) {
        apply(cols.axis, v);
    }
    (machine, options, workload)
}

/// The strategy actually executed at one sweep point: an error-rate axis
/// materializes into every strategy of the set that declares an
/// `error_rate` parameter (FP today; [`Strategy::with_param`] is a no-op
/// for the rest, so DP/SP columns pass through unchanged).
fn strategy_at(strategy: Strategy, spec: &ScenarioSpec, row: f64, col: Option<f64>) -> Strategy {
    let rate = if spec.rows.axis == Axis::ErrorRate {
        Some(row)
    } else {
        spec.columns
            .as_ref()
            .filter(|c| c.axis == Axis::ErrorRate)
            .and(col)
    };
    match rate {
        Some(error_rate) => strategy.with_param("error_rate", error_rate),
        None => strategy,
    }
}

/// Compiles the workload of a spec for one system. Mix workloads compile
/// their inner generated workload (the per-query scheduling descriptors are
/// applied later, when the [`QueryMix`] of a point is built).
fn compile_workload(
    workload: &WorkloadSpec,
    system: &HierarchicalSystem,
) -> Result<(Arc<CompiledWorkload>, Option<ChainShape>)> {
    match workload {
        WorkloadSpec::Generated {
            queries,
            relations,
            scale,
            seed,
        } => {
            let params = WorkloadParams {
                queries: *queries,
                relations_per_query: *relations,
                scale: *scale,
                skew: 0.0,
                seed: *seed,
            };
            Ok((Arc::new(CompiledWorkload::generate(params, system)?), None))
        }
        WorkloadSpec::Chain {
            relations,
            build_rows,
            probe_rows,
        } => {
            let (workload, shape) =
                chain_workload(*relations, *build_rows, *probe_rows, system.nodes())?;
            Ok((Arc::new(workload), Some(shape)))
        }
        WorkloadSpec::Mix(mix) => {
            let params = WorkloadParams {
                queries: mix.queries,
                relations_per_query: mix.relations,
                scale: mix.scale,
                skew: 0.0,
                seed: mix.seed,
            };
            Ok((Arc::new(CompiledWorkload::generate(params, system)?), None))
        }
        // Open workloads compile their template pool; the arrival stream
        // draws from it at run time.
        WorkloadSpec::Open(open) => {
            let params = WorkloadParams {
                queries: open.templates,
                relations_per_query: open.relations,
                scale: open.scale,
                skew: 0.0,
                seed: open.seed,
            };
            Ok((Arc::new(CompiledWorkload::generate(params, system)?), None))
        }
    }
}

/// Builds the §5.3 pipeline-chain workload: a right-deep join tree over
/// `relations` relations — every hash table is built from a base relation
/// and the probing relation streams through `relations - 1` probes, one
/// maximum pipeline chain.
fn chain_workload(
    relations: usize,
    build_rows: u64,
    probe_rows: u64,
    nodes: u32,
) -> Result<(CompiledWorkload, ChainShape)> {
    // Selectivity keeping every intermediate result at ~probe_rows.
    let sel = 1.0 / build_rows.max(1) as f64;
    let mut tree = JoinTree::leaf(RelationId::new(relations as u32 - 1), probe_rows);
    for i in (0..relations as u32 - 1).rev() {
        tree = JoinTree::join(JoinTree::leaf(RelationId::new(i), build_rows), tree, sel);
    }
    let optree = OperatorTree::from_join_tree(&tree);
    let homes = OperatorHomes::all_nodes(&optree, nodes);
    let plan = ParallelPlan::build(
        QueryId::new(100),
        optree,
        homes,
        ChainScheduling::OneAtATime,
    )?;
    let shape = ChainShape {
        operators: plan.tree.operators().len(),
        chains: plan.chains().len(),
        longest_chain: plan.chains().iter().map(|c| c.len()).max().unwrap_or(0),
    };
    Ok((CompiledWorkload::from_plans(vec![plan]), shape))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(spec: ScenarioSpec) -> ScenarioSpec {
        spec.with_generated_workload(1, 4, 0.005, 11)
    }

    #[test]
    fn run_scenario_covers_the_grid_in_row_major_order() {
        let spec = tiny(
            ScenarioSpec::builder("grid")
                .machine(1, 2)
                .strategies([Strategy::fixed(0.0)])
                .rows(Axis::ErrorRate, [0.0, 0.3])
                .columns(Axis::ProcessorsPerNode, [2.0, 4.0])
                .reference(Reference::SamePoint(Strategy::dynamic()))
                .build()
                .unwrap(),
        );
        let report = run_scenario(&spec).unwrap();
        assert_eq!(report.points.len(), 4);
        let coords: Vec<(f64, Option<f64>)> =
            report.points.iter().map(|p| (p.row, p.col)).collect();
        assert_eq!(
            coords,
            vec![
                (0.0, Some(2.0)),
                (0.0, Some(4.0)),
                (0.3, Some(2.0)),
                (0.3, Some(4.0))
            ]
        );
        // The error-rate axis materialized into the FP strategy.
        assert_eq!(report.points[2].cells[0].strategy, Strategy::fixed(0.3));
        for p in &report.points {
            assert!(p.cells[0].value.is_finite());
            assert_eq!(p.cells[0].summary.plans, p.cells[0].runs.len());
        }
    }

    #[test]
    fn first_row_reference_pins_every_strategy_to_its_own_baseline() {
        let spec = tiny(
            ScenarioSpec::builder("speedup")
                .machine(1, 1)
                .strategies([Strategy::dynamic(), Strategy::fixed(0.0)])
                .rows(Axis::ProcessorsPerNode, [1.0, 4.0])
                .reference(Reference::FirstRow)
                .metric(Metric::Speedup)
                .build()
                .unwrap(),
        );
        let report = run_scenario(&spec).unwrap();
        // The first row IS the baseline: speed-up exactly 1 for every
        // strategy.
        for cell in &report.points[0].cells {
            assert!((cell.value - 1.0).abs() < 1e-12, "got {}", cell.value);
        }
        // More processors never slow the tiny workload down.
        for cell in &report.points[1].cells {
            assert!(cell.value >= 0.9, "speedup {}", cell.value);
        }
    }

    #[test]
    fn scenario_points_share_one_cache() {
        // DP is both measured and the same-point reference: each point must
        // reuse the measured run for the reference (one simulation, shared
        // allocation).
        let spec = tiny(
            ScenarioSpec::builder("shared")
                .machine(2, 2)
                .strategies([Strategy::dynamic()])
                .rows(Axis::Skew, [0.0, 0.5])
                .reference(Reference::SamePoint(Strategy::dynamic()))
                .build()
                .unwrap(),
        );
        let report = run_scenario(&spec).unwrap();
        for p in &report.points {
            assert!((p.cells[0].value - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn chain_workloads_report_their_shape() {
        let spec = ScenarioSpec::builder("chain")
            .machine(2, 2)
            .workload(WorkloadSpec::Chain {
                relations: 3,
                build_rows: 500,
                probe_rows: 1_500,
            })
            .strategies([Strategy::dynamic(), Strategy::fixed(0.0)])
            .rows(Axis::Skew, [0.8])
            .presentation(Presentation::Chain)
            .build()
            .unwrap();
        let report = run_scenario(&spec).unwrap();
        let shape = report.chain.unwrap();
        assert_eq!(shape.longest_chain, 3);
        assert!(shape.operators >= 5);
        assert_eq!(report.points.len(), 1);
        assert_eq!(report.points[0].cells.len(), 2);
        for cell in &report.points[0].cells {
            assert_eq!(cell.runs.len(), 1, "chain workloads have one plan");
        }
    }

    #[test]
    fn open_scenarios_sweep_the_arrival_rate_and_attach_reports() {
        let spec = ScenarioSpec::builder("open")
            .machine(2, 2)
            .workload(WorkloadSpec::Open(OpenSpec {
                queries: 30,
                concurrency: 2,
                templates: 2,
                relations: 4,
                scale: 0.005,
                ..OpenSpec::default()
            }))
            .strategies([Strategy::fixed(0.0)])
            .rows(Axis::ArrivalRate, [10.0, 40.0])
            .reference(Reference::SamePoint(Strategy::dynamic()))
            .build()
            .unwrap();
        let report = run_scenario(&spec).unwrap();
        assert_eq!(report.points.len(), 2);
        for p in &report.points {
            let cell = &p.cells[0];
            let open = cell.open.as_ref().expect("open cells carry a report");
            assert_eq!(open.completed, 30);
            assert!(open.peak_live <= 2);
            assert!(cell.value.is_finite() && cell.value > 0.0);
            // The solo per-plan runs back the open report (one per plan
            // variant, at least one per template).
            assert!(cell.runs.len() >= 2);
        }
        // A faster arrival rate can only hold or raise queueing delay.
        let slow = report.points[0].cells[0].open.as_ref().unwrap();
        let fast = report.points[1].cells[0].open.as_ref().unwrap();
        assert!(fast.wait.mean() >= slow.wait.mean() - 1e-12);
    }

    #[test]
    fn base_experiment_matches_the_spec_machine() {
        let exp = base_experiment(&tiny(registry::paper_base())).unwrap();
        assert_eq!(exp.system().nodes(), 4);
        assert_eq!(exp.system().processors_per_node(), 8);
        assert!(!exp.workload().is_empty());
    }
}
