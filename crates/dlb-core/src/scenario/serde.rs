//! Hand-rolled JSON (de)serialization of [`ScenarioSpec`]s.
//!
//! The workspace's `serde` is an offline no-op shim, so the spec file format
//! is implemented directly over [`dlb_common::json`]. Every field except
//! `name` is optional on input — a minimal user spec is just a name plus the
//! parts that differ from the defaults; see `EXPERIMENTS.md` for the full
//! format and a runnable example. Unknown keys are rejected so that typos
//! fail loudly instead of silently running the default.

use super::spec::{
    Axis, MachineSpec, Metric, MixSpec, OpenSpec, Presentation, Reference, RowFmt, ScenarioSpec,
    Sweep, TableStyle, WorkloadSpec,
};
use dlb_common::json::{object, Json};
use dlb_common::{DlbError, Result};
use dlb_exec::{
    ContentionModel, ErrorRealization, ExecOptions, FlowControl, MixMode, MixPolicy,
    RecoveryOptions, RecoveryPolicy, RehomePolicy, StealPolicy, Strategy, TopologyChange,
    TopologyEvent,
};
use dlb_traffic::ArrivalKind;

impl ScenarioSpec {
    /// Serializes the spec as pretty-printed JSON (the on-disk spec-file
    /// format).
    pub fn to_json(&self) -> String {
        spec_to_json(self).pretty()
    }

    /// Parses a spec from its JSON text form and validates it.
    pub fn from_json(text: &str) -> Result<ScenarioSpec> {
        let doc = Json::parse(text)?;
        let spec = spec_from_json(&doc)?;
        spec.validate()?;
        Ok(spec)
    }
}

pub(super) fn axis_name(axis: Axis) -> &'static str {
    match axis {
        Axis::Skew => "skew",
        Axis::Nodes => "nodes",
        Axis::ProcessorsPerNode => "processors_per_node",
        Axis::ErrorRate => "error_rate",
        Axis::ConcurrentQueries => "concurrent_queries",
        Axis::MemoryPerNode => "memory_per_node_mb",
        Axis::FailureTime => "failure_time",
        Axis::FailedNodes => "failed_nodes",
        Axis::ArrivalRate => "arrival_rate_qps",
        Axis::Burstiness => "burstiness",
        Axis::TemplateSkew => "template_skew",
    }
}

fn axis_from_name(name: &str) -> Result<Axis> {
    match name {
        "skew" => Ok(Axis::Skew),
        "nodes" => Ok(Axis::Nodes),
        "processors_per_node" => Ok(Axis::ProcessorsPerNode),
        "error_rate" => Ok(Axis::ErrorRate),
        "concurrent_queries" => Ok(Axis::ConcurrentQueries),
        "memory_per_node_mb" => Ok(Axis::MemoryPerNode),
        "failure_time" => Ok(Axis::FailureTime),
        "failed_nodes" => Ok(Axis::FailedNodes),
        "arrival_rate_qps" => Ok(Axis::ArrivalRate),
        "burstiness" => Ok(Axis::Burstiness),
        "template_skew" => Ok(Axis::TemplateSkew),
        other => Err(parse_err(format!(
            "unknown axis {other:?} (expected skew | nodes | processors_per_node | error_rate \
             | concurrent_queries | memory_per_node_mb | failure_time | failed_nodes \
             | arrival_rate_qps | burstiness | template_skew)"
        ))),
    }
}

fn parse_err(msg: impl Into<String>) -> DlbError {
    DlbError::Parse(format!("scenario spec: {}", msg.into()))
}

pub(super) fn machine_to_json(machine: &MachineSpec) -> Json {
    let mut members = vec![
        ("nodes", Json::from(machine.nodes)),
        (
            "processors_per_node",
            Json::from(machine.processors_per_node),
        ),
    ];
    if let Some(mb) = machine.memory_per_node_mb {
        members.push(("memory_per_node_mb", Json::from(mb)));
    }
    object(members)
}

pub(super) fn workload_to_json(workload: &WorkloadSpec) -> Json {
    match workload {
        WorkloadSpec::Generated {
            queries,
            relations,
            scale,
            seed,
        } => object(vec![
            ("queries", Json::from(*queries)),
            ("relations", Json::from(*relations)),
            ("scale", Json::Float(*scale)),
            ("seed", Json::from(*seed)),
        ]),
        WorkloadSpec::Chain {
            relations,
            build_rows,
            probe_rows,
        } => object(vec![(
            "chain",
            object(vec![
                ("relations", Json::from(*relations)),
                ("build_rows", Json::from(*build_rows)),
                ("probe_rows", Json::from(*probe_rows)),
            ]),
        )]),
        WorkloadSpec::Mix(mix) => {
            let mut members = vec![
                ("queries", Json::from(mix.queries)),
                ("relations", Json::from(mix.relations)),
                ("scale", Json::Float(mix.scale)),
                ("seed", Json::from(mix.seed)),
                ("arrival_gap_secs", Json::Float(mix.arrival_gap_secs)),
                ("policy", Json::from(mix.policy.label())),
                ("mode", Json::from(mix.mode.label())),
                (
                    "priorities",
                    Json::Array(mix.priorities.iter().map(|&p| Json::from(p)).collect()),
                ),
                (
                    "skews",
                    Json::Array(mix.skews.iter().map(|&s| Json::Float(s)).collect()),
                ),
            ];
            // Emitted only when the mix carries events, so pre-existing
            // fault-free spec exports stay byte-identical.
            if !mix.topology.is_empty() {
                members.push(("topology", topology_to_json(&mix.topology)));
            }
            object(vec![("mix", object(members))])
        }
        WorkloadSpec::Open(open) => {
            let mut members = vec![
                ("kind", Json::from(open.kind.label())),
                ("rate_qps", Json::Float(open.rate_qps)),
                ("burstiness", Json::Float(open.burstiness)),
                ("queries", Json::from(open.queries)),
                ("concurrency", Json::from(open.concurrency)),
                ("priority_classes", Json::from(open.priority_classes)),
                ("templates", Json::from(open.templates)),
                ("relations", Json::from(open.relations)),
                ("scale", Json::Float(open.scale)),
                ("seed", Json::from(open.seed)),
            ];
            // Front-end / skew knobs are emitted only when they differ from
            // their inert defaults, so pre-existing spec exports stay
            // byte-identical.
            if open.template_skew != 0.0 {
                members.push(("template_skew", Json::Float(open.template_skew)));
            }
            if open.cache_capacity != 0 {
                members.push(("cache_capacity", Json::from(open.cache_capacity)));
            }
            if open.cache_ttl_secs.is_finite() {
                members.push(("cache_ttl_secs", Json::Float(open.cache_ttl_secs)));
            }
            if open.coalesce {
                members.push(("coalesce", Json::Bool(true)));
            }
            if open.fanout_cost_secs != 0.0 {
                members.push(("fanout_cost_secs", Json::Float(open.fanout_cost_secs)));
            }
            object(vec![("open", object(members))])
        }
    }
}

/// Policies serialize as named specs: a bare name for parameterless
/// policies (`"DP"`), `{name: value}` for single-parameter ones
/// (`{"FP": 0.3}` — always emitted, so pre-existing exports stay
/// byte-identical), and `{name: {param: value, ...}}` for multi-parameter
/// ones (`{"Threshold": {"hi": 4096, "lo": 512}}`).
fn strategy_to_json(strategy: &Strategy) -> Json {
    let specs = strategy.policy().params();
    match specs.len() {
        0 => Json::from(strategy.name()),
        1 => object(vec![(strategy.name(), Json::Float(strategy.params().0[0]))]),
        _ => {
            let params = specs
                .iter()
                .enumerate()
                .map(|(i, spec)| (spec.name, Json::Float(strategy.params().0[i])))
                .collect();
            object(vec![(strategy.name(), object(params))])
        }
    }
}

/// The spelling of every registered policy, for parse errors.
fn known_policy_names() -> String {
    dlb_exec::policies()
        .iter()
        .map(|p| p.name())
        .collect::<Vec<_>>()
        .join(" | ")
}

fn strategy_from_json(v: &Json) -> Result<Strategy> {
    match v {
        // A bare name selects the policy with every parameter at its
        // default — this keeps the historical `"FP"` spelling parsing
        // (error_rate defaults to 0.0).
        Json::Str(s) => Strategy::from_name(s).ok_or_else(|| {
            parse_err(format!(
                "unknown strategy {s:?} (expected {})",
                known_policy_names()
            ))
        }),
        Json::Object(members) => {
            let [(name, value)] = members.as_slice() else {
                return Err(parse_err(
                    "strategy objects must have exactly one member: \
                     {name: value} or {name: {param: value}}",
                ));
            };
            let strategy = Strategy::from_name(name).ok_or_else(|| {
                parse_err(format!(
                    "unknown strategy {name:?} (expected {})",
                    known_policy_names()
                ))
            })?;
            let specs = strategy.policy().params();
            match value {
                Json::Object(params) => {
                    let mut out = strategy;
                    for (pname, pvalue) in params {
                        if !specs.iter().any(|s| s.name == pname.as_str()) {
                            return Err(parse_err(format!(
                                "strategy {name:?} has no parameter {pname:?} (expected {})",
                                specs.iter().map(|s| s.name).collect::<Vec<_>>().join(" | ")
                            )));
                        }
                        let pvalue = pvalue.as_f64().ok_or_else(|| {
                            parse_err(format!("strategy parameter {pname:?} must be a number"))
                        })?;
                        out = out.with_param(pname, pvalue);
                    }
                    Ok(out)
                }
                scalar => {
                    if specs.len() != 1 {
                        return Err(parse_err(format!(
                            "strategy {name:?} takes {} parameters; use {{{name:?}: \
                             {{param: value}}}}",
                            specs.len()
                        )));
                    }
                    let pvalue = scalar.as_f64().ok_or_else(|| {
                        parse_err(format!(
                            "strategy objects must be {{{name:?}: <{}>}}",
                            specs[0].name
                        ))
                    })?;
                    Ok(strategy.with_param(specs[0].name, pvalue))
                }
            }
        }
        _ => Err(parse_err(
            "strategies must be strings or single-member objects",
        )),
    }
}

pub(super) fn metric_to_json(metric: Metric) -> Json {
    Json::from(match metric {
        Metric::Relative => "relative",
        Metric::Speedup => "speedup",
    })
}

pub(super) fn reference_to_json(reference: &Reference) -> Json {
    match reference {
        Reference::SamePoint(s) => object(vec![("same_point", strategy_to_json(s))]),
        Reference::FirstRow => Json::from("first_row"),
    }
}

fn sweep_to_json(sweep: &Sweep) -> Json {
    object(vec![
        ("axis", Json::from(axis_name(sweep.axis))),
        (
            "values",
            Json::Array(sweep.values.iter().map(|&v| Json::Float(v)).collect()),
        ),
    ])
}

fn sweep_from_json(v: &Json) -> Result<Sweep> {
    let axis = axis_from_name(
        v.get("axis")
            .and_then(Json::as_str)
            .ok_or_else(|| parse_err("sweeps need an \"axis\" string"))?,
    )?;
    let values = v
        .get("values")
        .and_then(Json::as_array)
        .ok_or_else(|| parse_err("sweeps need a \"values\" array"))?
        .iter()
        .map(|j| {
            j.as_f64()
                .ok_or_else(|| parse_err("sweep values must be numbers"))
        })
        .collect::<Result<Vec<f64>>>()?;
    Ok(Sweep { axis, values })
}

fn row_fmt_name(fmt: RowFmt) -> &'static str {
    match fmt {
        RowFmt::Int => "int",
        RowFmt::Fixed1 => "fixed1",
        RowFmt::Fixed2 => "fixed2",
        RowFmt::Percent => "percent",
        RowFmt::NodesByProcs => "nodes_x_procs",
    }
}

fn row_fmt_from_name(name: &str) -> Result<RowFmt> {
    match name {
        "int" => Ok(RowFmt::Int),
        "fixed1" => Ok(RowFmt::Fixed1),
        "fixed2" => Ok(RowFmt::Fixed2),
        "percent" => Ok(RowFmt::Percent),
        "nodes_x_procs" => Ok(RowFmt::NodesByProcs),
        other => Err(parse_err(format!(
            "unknown row format {other:?} \
             (expected int | fixed1 | fixed2 | percent | nodes_x_procs)"
        ))),
    }
}

fn style_to_json(style: &TableStyle) -> Json {
    object(vec![
        ("row_header", Json::from(style.row_header.as_str())),
        ("row_format", Json::from(row_fmt_name(style.row_fmt))),
        ("row_width", Json::from(style.row_width)),
        ("cell_width", Json::from(style.cell_width)),
        (
            "headers",
            Json::Array(
                style
                    .headers
                    .iter()
                    .map(|h| Json::from(h.as_str()))
                    .collect(),
            ),
        ),
    ])
}

fn style_from_json(v: &Json, default_axis: Axis) -> Result<TableStyle> {
    let defaults = TableStyle::for_axis(default_axis);
    expect_keys(
        v,
        &[
            "row_header",
            "row_format",
            "row_width",
            "cell_width",
            "headers",
        ],
        "table style",
    )?;
    Ok(TableStyle {
        row_header: v
            .get("row_header")
            .and_then(Json::as_str)
            .map_or(defaults.row_header, str::to_string),
        row_fmt: match v.get("row_format").and_then(Json::as_str) {
            Some(name) => row_fmt_from_name(name)?,
            None => defaults.row_fmt,
        },
        row_width: v
            .get("row_width")
            .and_then(Json::as_u64)
            .map_or(defaults.row_width, |w| w as usize),
        cell_width: v
            .get("cell_width")
            .and_then(Json::as_u64)
            .map_or(defaults.cell_width, |w| w as usize),
        headers: match v.get("headers").and_then(Json::as_array) {
            Some(items) => items
                .iter()
                .map(|h| {
                    h.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| parse_err("headers must be strings"))
                })
                .collect::<Result<_>>()?,
            None => defaults.headers,
        },
    })
}

fn presentation_to_json(p: &Presentation) -> Json {
    match p {
        Presentation::Table(style) => object(vec![("table", style_to_json(style))]),
        Presentation::Grid(style) => object(vec![("grid", style_to_json(style))]),
        Presentation::Balance(style) => object(vec![("balance", style_to_json(style))]),
        Presentation::Mix(style) => object(vec![("mix", style_to_json(style))]),
        Presentation::Open(style) => object(vec![("open", style_to_json(style))]),
        Presentation::Chain => Json::from("chain"),
    }
}

fn presentation_from_json(v: &Json, default_axis: Axis) -> Result<Presentation> {
    match v {
        Json::Str(s) if s == "chain" => Ok(Presentation::Chain),
        Json::Object(members) if members.len() == 1 => {
            let (kind, style) = &members[0];
            let style = style_from_json(style, default_axis)?;
            match kind.as_str() {
                "table" => Ok(Presentation::Table(style)),
                "grid" => Ok(Presentation::Grid(style)),
                "balance" => Ok(Presentation::Balance(style)),
                "mix" => Ok(Presentation::Mix(style)),
                "open" => Ok(Presentation::Open(style)),
                other => Err(parse_err(format!(
                    "unknown presentation {other:?} \
                     (expected table | grid | balance | mix | open | \"chain\")"
                ))),
            }
        }
        _ => Err(parse_err(
            "presentation must be \"chain\" or \
             {\"table\"|\"grid\"|\"balance\"|\"mix\"|\"open\": {..}}",
        )),
    }
}

fn options_to_json(o: &ExecOptions) -> Json {
    let mut members = vec![
        ("skew", Json::Float(o.skew)),
        ("seed", Json::from(o.seed)),
        ("fp_realization", Json::from(o.fp_realization.label())),
        (
            "flow",
            object(vec![
                ("queue_capacity", Json::from(o.flow.queue_capacity)),
                ("trigger_pages", Json::from(o.flow.trigger_pages)),
            ]),
        ),
        (
            "contention",
            object(vec![
                ("threshold", Json::from(o.contention.threshold)),
                ("degradation", Json::Float(o.contention.degradation)),
            ]),
        ),
        (
            "steal",
            object(vec![
                ("min_tuples", Json::from(o.steal.min_tuples)),
                ("fraction", Json::Float(o.steal.fraction)),
            ]),
        ),
    ];
    // Emitted only when it differs from the default, so pre-existing spec
    // exports stay byte-identical.
    if o.recovery != RecoveryOptions::default() {
        members.push((
            "recovery",
            object(vec![
                ("policy", Json::from(o.recovery.policy.label())),
                ("rehome", Json::from(o.recovery.rehome.label())),
            ]),
        ));
    }
    object(members)
}

fn options_from_json(v: &Json) -> Result<ExecOptions> {
    expect_keys(
        v,
        &[
            "skew",
            "seed",
            "fp_realization",
            "flow",
            "contention",
            "steal",
            "recovery",
        ],
        "options",
    )?;
    let d = ExecOptions::default();
    let flow = v.get("flow");
    let contention = v.get("contention");
    let steal = v.get("steal");
    if let Some(flow) = flow {
        expect_keys(flow, &["queue_capacity", "trigger_pages"], "options.flow")?;
    }
    if let Some(c) = contention {
        expect_keys(c, &["threshold", "degradation"], "options.contention")?;
    }
    if let Some(s) = steal {
        expect_keys(s, &["min_tuples", "fraction"], "options.steal")?;
    }
    let opt_f64 = |v: Option<&Json>, key: &str, default: f64| -> Result<f64> {
        match v.and_then(|o| o.get(key)) {
            None => Ok(default),
            Some(j) => j
                .as_f64()
                .ok_or_else(|| parse_err(format!("{key} must be a number"))),
        }
    };
    let opt_u64 = |v: Option<&Json>, key: &str, default: u64| -> Result<u64> {
        match v.and_then(|o| o.get(key)) {
            None => Ok(default),
            Some(j) => j
                .as_u64()
                .ok_or_else(|| parse_err(format!("{key} must be a non-negative integer"))),
        }
    };
    let fp_realization = match v.get("fp_realization") {
        None => d.fp_realization,
        Some(j) => {
            let label = j
                .as_str()
                .ok_or_else(|| parse_err("\"fp_realization\" must be a string"))?;
            ErrorRealization::from_label(label).map_err(parse_err)?
        }
    };
    let recovery = match v.get("recovery") {
        None => d.recovery,
        Some(r) => {
            expect_keys(r, &["policy", "rehome"], "options.recovery")?;
            let rd = RecoveryOptions::default();
            let policy = match r.get("policy") {
                None => rd.policy,
                Some(j) => {
                    let label = j
                        .as_str()
                        .ok_or_else(|| parse_err("recovery \"policy\" must be a string"))?;
                    RecoveryPolicy::from_label(label).map_err(parse_err)?
                }
            };
            let rehome = match r.get("rehome") {
                None => rd.rehome,
                Some(j) => {
                    let label = j
                        .as_str()
                        .ok_or_else(|| parse_err("recovery \"rehome\" must be a string"))?;
                    RehomePolicy::from_label(label).ok_or_else(|| {
                        parse_err(format!(
                            "unknown rehome policy {label:?} \
                             (expected consistent-hash | range)"
                        ))
                    })?
                }
            };
            RecoveryOptions { policy, rehome }
        }
    };
    Ok(ExecOptions {
        skew: opt_f64(Some(v), "skew", d.skew)?,
        seed: opt_u64(Some(v), "seed", d.seed)?,
        fp_realization,
        flow: FlowControl {
            queue_capacity: opt_u64(flow, "queue_capacity", d.flow.queue_capacity as u64)? as usize,
            trigger_pages: opt_u64(flow, "trigger_pages", d.flow.trigger_pages)?,
        },
        contention: ContentionModel {
            threshold: opt_u64(contention, "threshold", d.contention.threshold as u64)? as u32,
            degradation: opt_f64(contention, "degradation", d.contention.degradation)?,
        },
        steal: StealPolicy {
            min_tuples: opt_u64(steal, "min_tuples", d.steal.min_tuples)?,
            fraction: opt_f64(steal, "fraction", d.steal.fraction)?,
        },
        recovery,
    })
}

fn topology_to_json(events: &[TopologyEvent]) -> Json {
    Json::Array(
        events
            .iter()
            .map(|e| {
                object(vec![
                    ("at_secs", Json::Float(e.at_secs)),
                    ("node", Json::from(e.node.index())),
                    ("change", Json::from(e.change.label())),
                ])
            })
            .collect(),
    )
}

fn topology_from_json(v: &Json) -> Result<Vec<TopologyEvent>> {
    let items = v
        .as_array()
        .ok_or_else(|| parse_err("mix \"topology\" must be an array of event objects"))?;
    items
        .iter()
        .map(|e| {
            expect_keys(e, &["at_secs", "node", "change"], "topology event")?;
            let at_secs = e
                .get("at_secs")
                .and_then(Json::as_f64)
                .ok_or_else(|| parse_err("topology events need a numeric \"at_secs\""))?;
            let node = e
                .get("node")
                .and_then(Json::as_u64)
                .ok_or_else(|| parse_err("topology events need an integer \"node\""))?;
            let label = e
                .get("change")
                .and_then(Json::as_str)
                .ok_or_else(|| parse_err("topology events need a \"change\" string"))?;
            let change = TopologyChange::from_label(label).ok_or_else(|| {
                parse_err(format!(
                    "unknown topology change {label:?} (expected fail | drain | join)"
                ))
            })?;
            Ok(TopologyEvent {
                at_secs,
                node: dlb_common::NodeId::from(node as usize),
                change,
            })
        })
        .collect()
}

fn workload_from_json(v: &Json) -> Result<WorkloadSpec> {
    if let Some(mix) = v.get("mix") {
        expect_keys(v, &["mix"], "workload")?;
        expect_keys(
            mix,
            &[
                "queries",
                "relations",
                "scale",
                "seed",
                "arrival_gap_secs",
                "policy",
                "mode",
                "priorities",
                "skews",
                "topology",
            ],
            "workload.mix",
        )?;
        let d = MixSpec::default();
        let opt_u64 = |key: &str, default: u64| -> Result<u64> {
            match mix.get(key) {
                None => Ok(default),
                Some(j) => j.as_u64().ok_or_else(|| {
                    parse_err(format!("mix {key:?} must be a non-negative integer"))
                }),
            }
        };
        let opt_f64 = |key: &str, default: f64| -> Result<f64> {
            match mix.get(key) {
                None => Ok(default),
                Some(j) => j
                    .as_f64()
                    .ok_or_else(|| parse_err(format!("mix {key:?} must be a number"))),
            }
        };
        let policy = match mix.get("policy") {
            None => d.policy,
            Some(j) => {
                let label = j
                    .as_str()
                    .ok_or_else(|| parse_err("mix \"policy\" must be a string"))?;
                MixPolicy::from_label(label)?
            }
        };
        let mode = match mix.get("mode") {
            None => d.mode,
            Some(j) => {
                let label = j
                    .as_str()
                    .ok_or_else(|| parse_err("mix \"mode\" must be a string"))?;
                MixMode::from_label(label)?
            }
        };
        let priorities = match mix.get("priorities").and_then(Json::as_array) {
            None => d.priorities.clone(),
            Some(items) => items
                .iter()
                .map(|j| {
                    j.as_u64()
                        .map(|p| p as u32)
                        .ok_or_else(|| parse_err("mix priorities must be integers"))
                })
                .collect::<Result<_>>()?,
        };
        let skews = match mix.get("skews").and_then(Json::as_array) {
            None => d.skews.clone(),
            Some(items) => items
                .iter()
                .map(|j| {
                    j.as_f64()
                        .ok_or_else(|| parse_err("mix skews must be numbers"))
                })
                .collect::<Result<_>>()?,
        };
        let topology = match mix.get("topology") {
            None => d.topology.clone(),
            Some(t) => topology_from_json(t)?,
        };
        return Ok(WorkloadSpec::Mix(MixSpec {
            queries: opt_u64("queries", d.queries as u64)? as usize,
            relations: opt_u64("relations", d.relations as u64)? as usize,
            scale: opt_f64("scale", d.scale)?,
            seed: opt_u64("seed", d.seed)?,
            arrival_gap_secs: opt_f64("arrival_gap_secs", d.arrival_gap_secs)?,
            policy,
            mode,
            priorities,
            skews,
            topology,
        }));
    }
    if let Some(open) = v.get("open") {
        expect_keys(v, &["open"], "workload")?;
        expect_keys(
            open,
            &[
                "kind",
                "rate_qps",
                "burstiness",
                "queries",
                "concurrency",
                "priority_classes",
                "templates",
                "relations",
                "scale",
                "seed",
                "template_skew",
                "cache_capacity",
                "cache_ttl_secs",
                "coalesce",
                "fanout_cost_secs",
            ],
            "workload.open",
        )?;
        let d = OpenSpec::default();
        let opt_u64 = |key: &str, default: u64| -> Result<u64> {
            match open.get(key) {
                None => Ok(default),
                Some(j) => j.as_u64().ok_or_else(|| {
                    parse_err(format!("open {key:?} must be a non-negative integer"))
                }),
            }
        };
        let opt_f64 = |key: &str, default: f64| -> Result<f64> {
            match open.get(key) {
                None => Ok(default),
                Some(j) => j
                    .as_f64()
                    .ok_or_else(|| parse_err(format!("open {key:?} must be a number"))),
            }
        };
        let kind = match open.get("kind") {
            None => d.kind,
            Some(j) => {
                let label = j
                    .as_str()
                    .ok_or_else(|| parse_err("open \"kind\" must be a string"))?;
                ArrivalKind::from_label(label).ok_or_else(|| {
                    parse_err(format!(
                        "unknown arrival kind {label:?} (expected poisson | bursty | diurnal)"
                    ))
                })?
            }
        };
        return Ok(WorkloadSpec::Open(OpenSpec {
            kind,
            rate_qps: opt_f64("rate_qps", d.rate_qps)?,
            burstiness: opt_f64("burstiness", d.burstiness)?,
            queries: opt_u64("queries", d.queries as u64)? as usize,
            concurrency: opt_u64("concurrency", d.concurrency as u64)? as usize,
            priority_classes: opt_u64("priority_classes", d.priority_classes as u64)? as u32,
            templates: opt_u64("templates", d.templates as u64)? as usize,
            relations: opt_u64("relations", d.relations as u64)? as usize,
            scale: opt_f64("scale", d.scale)?,
            seed: opt_u64("seed", d.seed)?,
            template_skew: opt_f64("template_skew", d.template_skew)?,
            cache_capacity: opt_u64("cache_capacity", d.cache_capacity as u64)? as usize,
            // An absent TTL means "never expires"; the emit side only writes
            // the key for finite values.
            cache_ttl_secs: opt_f64("cache_ttl_secs", d.cache_ttl_secs)?,
            coalesce: match open.get("coalesce") {
                None => d.coalesce,
                Some(j) => j
                    .as_bool()
                    .ok_or_else(|| parse_err("open \"coalesce\" must be a boolean"))?,
            },
            fanout_cost_secs: opt_f64("fanout_cost_secs", d.fanout_cost_secs)?,
        }));
    }
    if let Some(chain) = v.get("chain") {
        expect_keys(v, &["chain"], "workload")?;
        expect_keys(
            chain,
            &["relations", "build_rows", "probe_rows"],
            "workload.chain",
        )?;
        return Ok(WorkloadSpec::Chain {
            relations: chain
                .get("relations")
                .and_then(Json::as_u64)
                .ok_or_else(|| parse_err("chain workloads need integer \"relations\""))?
                as usize,
            build_rows: chain
                .get("build_rows")
                .and_then(Json::as_u64)
                .ok_or_else(|| parse_err("chain workloads need integer \"build_rows\""))?,
            probe_rows: chain
                .get("probe_rows")
                .and_then(Json::as_u64)
                .ok_or_else(|| parse_err("chain workloads need integer \"probe_rows\""))?,
        });
    }
    expect_keys(v, &["queries", "relations", "scale", "seed"], "workload")?;
    let WorkloadSpec::Generated {
        queries,
        relations,
        scale,
        seed,
    } = WorkloadSpec::default()
    else {
        unreachable!("default workload is generated");
    };
    Ok(WorkloadSpec::Generated {
        queries: v
            .get("queries")
            .map(|j| {
                j.as_u64()
                    .ok_or_else(|| parse_err("\"queries\" must be an integer"))
            })
            .transpose()?
            .map_or(queries, |q| q as usize),
        relations: v
            .get("relations")
            .map(|j| {
                j.as_u64()
                    .ok_or_else(|| parse_err("\"relations\" must be an integer"))
            })
            .transpose()?
            .map_or(relations, |r| r as usize),
        scale: v
            .get("scale")
            .map(|j| {
                j.as_f64()
                    .ok_or_else(|| parse_err("\"scale\" must be a number"))
            })
            .transpose()?
            .unwrap_or(scale),
        seed: v
            .get("seed")
            .map(|j| {
                j.as_u64()
                    .ok_or_else(|| parse_err("\"seed\" must be an integer"))
            })
            .transpose()?
            .unwrap_or(seed),
    })
}

/// Rejects unknown object keys, so misspelled spec fields fail loudly.
fn expect_keys(v: &Json, allowed: &[&str], what: &str) -> Result<()> {
    let Some(members) = v.as_object() else {
        return Err(parse_err(format!("{what} must be an object")));
    };
    for (key, _) in members {
        if !allowed.contains(&key.as_str()) {
            return Err(parse_err(format!(
                "unknown {what} field {key:?} (expected one of {allowed:?})"
            )));
        }
    }
    Ok(())
}

fn spec_to_json(spec: &ScenarioSpec) -> Json {
    let mut members = vec![
        ("name", Json::from(spec.name.as_str())),
        ("title", Json::from(spec.title.as_str())),
        ("description", Json::from(spec.description.as_str())),
        ("machine", machine_to_json(&spec.machine)),
        ("workload", workload_to_json(&spec.workload)),
        ("options", options_to_json(&spec.options)),
        (
            "strategies",
            Json::Array(spec.strategies.iter().map(strategy_to_json).collect()),
        ),
        ("sweep", sweep_to_json(&spec.rows)),
    ];
    if let Some(cols) = &spec.columns {
        members.push(("columns", sweep_to_json(cols)));
    }
    members.extend([
        ("reference", reference_to_json(&spec.reference)),
        ("metric", metric_to_json(spec.metric)),
        ("presentation", presentation_to_json(&spec.presentation)),
        ("notes", Json::from(spec.notes.as_str())),
    ]);
    object(members)
}

fn spec_from_json(doc: &Json) -> Result<ScenarioSpec> {
    expect_keys(
        doc,
        &[
            "name",
            "title",
            "description",
            "machine",
            "workload",
            "options",
            "strategies",
            "sweep",
            "columns",
            "reference",
            "metric",
            "presentation",
            "notes",
        ],
        "top-level",
    )?;
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| parse_err("specs need a \"name\" string"))?
        .to_string();
    let machine = match doc.get("machine") {
        None => MachineSpec::default(),
        Some(m) => {
            expect_keys(
                m,
                &["nodes", "processors_per_node", "memory_per_node_mb"],
                "machine",
            )?;
            let d = MachineSpec::default();
            MachineSpec {
                nodes: m
                    .get("nodes")
                    .map(|j| {
                        j.as_u64()
                            .ok_or_else(|| parse_err("\"nodes\" must be an integer"))
                    })
                    .transpose()?
                    .map_or(d.nodes, |n| n as u32),
                processors_per_node: m
                    .get("processors_per_node")
                    .map(|j| {
                        j.as_u64()
                            .ok_or_else(|| parse_err("\"processors_per_node\" must be an integer"))
                    })
                    .transpose()?
                    .map_or(d.processors_per_node, |n| n as u32),
                memory_per_node_mb: m
                    .get("memory_per_node_mb")
                    .map(|j| {
                        j.as_u64()
                            .ok_or_else(|| parse_err("\"memory_per_node_mb\" must be an integer"))
                    })
                    .transpose()?,
            }
        }
    };
    let workload = match doc.get("workload") {
        None => WorkloadSpec::default(),
        Some(w) => workload_from_json(w)?,
    };
    let options = match doc.get("options") {
        None => ExecOptions::default(),
        Some(o) => options_from_json(o)?,
    };
    let strategies = match doc.get("strategies") {
        None => vec![Strategy::dynamic(), Strategy::fixed(0.0)],
        Some(Json::Array(items)) => items
            .iter()
            .map(strategy_from_json)
            .collect::<Result<Vec<_>>>()?,
        Some(_) => return Err(parse_err("\"strategies\" must be an array")),
    };
    let rows = match doc.get("sweep") {
        None => Sweep::new(Axis::Skew, [0.0]),
        Some(s) => sweep_from_json(s)?,
    };
    let columns = doc.get("columns").map(sweep_from_json).transpose()?;
    let reference = match doc.get("reference") {
        // An empty strategy set is rejected by validate(); error here too so
        // the default-reference lookup cannot panic first.
        None => Reference::SamePoint(*strategies.first().ok_or_else(|| {
            parse_err("specs need at least one strategy to default the reference")
        })?),
        Some(Json::Str(s)) if s == "first_row" => Reference::FirstRow,
        Some(v) => match v.get("same_point") {
            Some(s) => Reference::SamePoint(strategy_from_json(s)?),
            None => {
                return Err(parse_err(
                    "reference must be \"first_row\" or {\"same_point\": <strategy>}",
                ))
            }
        },
    };
    let metric = match doc.get("metric").and_then(Json::as_str) {
        None => Metric::Relative,
        Some("relative") => Metric::Relative,
        Some("speedup") => Metric::Speedup,
        Some(other) => {
            return Err(parse_err(format!(
                "unknown metric {other:?} (expected relative | speedup)"
            )))
        }
    };
    let presentation = match doc.get("presentation") {
        None if columns.is_some() => Presentation::Grid(TableStyle::for_axis(rows.axis)),
        None if workload.is_mix() => Presentation::Mix(TableStyle::for_axis(rows.axis)),
        None if workload.is_open() => Presentation::Open(TableStyle::for_axis(rows.axis)),
        None => Presentation::Table(TableStyle::for_axis(rows.axis)),
        Some(p) => presentation_from_json(p, rows.axis)?,
    };
    Ok(ScenarioSpec {
        title: doc
            .get("title")
            .and_then(Json::as_str)
            .unwrap_or(&name)
            .to_string(),
        name,
        description: doc
            .get("description")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string(),
        machine,
        options,
        workload,
        strategies,
        rows,
        columns,
        reference,
        metric,
        presentation,
        notes: doc
            .get("notes")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::super::registry;
    use super::*;

    #[test]
    fn every_bundled_spec_round_trips_through_json() {
        for spec in registry::registry() {
            let text = spec.to_json();
            let back = ScenarioSpec::from_json(&text)
                .unwrap_or_else(|e| panic!("{} failed to reparse: {e}", spec.name));
            assert_eq!(back, spec, "{} did not round-trip", spec.name);
        }
    }

    #[test]
    fn minimal_spec_fills_in_defaults() {
        let spec = ScenarioSpec::from_json(r#"{"name": "mini"}"#).unwrap();
        assert_eq!(spec.name, "mini");
        assert_eq!(spec.title, "mini");
        assert_eq!(spec.machine, MachineSpec::default());
        assert_eq!(spec.workload, WorkloadSpec::default());
        assert_eq!(spec.strategies.len(), 2);
        assert_eq!(spec.reference, Reference::SamePoint(Strategy::dynamic()));
        assert!(matches!(spec.presentation, Presentation::Table(_)));
    }

    #[test]
    fn partial_option_groups_inherit_defaults() {
        let spec = ScenarioSpec::from_json(
            r#"{"name": "tuned", "options": {"skew": 0.4, "steal": {"min_tuples": 16}}}"#,
        )
        .unwrap();
        assert_eq!(spec.options.skew, 0.4);
        assert_eq!(spec.options.steal.min_tuples, 16);
        let d = ExecOptions::default();
        assert_eq!(spec.options.steal.fraction, d.steal.fraction);
        assert_eq!(spec.options.flow, d.flow);
        assert_eq!(spec.options.seed, d.seed);
    }

    #[test]
    fn fp_realization_parses_round_trips_and_rejects_unknown_labels() {
        let spec =
            ScenarioSpec::from_json(r#"{"name": "x", "options": {"fp_realization": "per-node"}}"#)
                .unwrap();
        assert_eq!(spec.options.fp_realization, ErrorRealization::PerNode);
        assert_eq!(ScenarioSpec::from_json(&spec.to_json()).unwrap(), spec);
        // Unset keeps the paper-reading default.
        let defaulted = ScenarioSpec::from_json(r#"{"name": "x"}"#).unwrap();
        assert_eq!(defaulted.options.fp_realization, ErrorRealization::Shared);
        assert!(ScenarioSpec::from_json(
            r#"{"name": "x", "options": {"fp_realization": "per-operator"}}"#
        )
        .is_err());
    }

    #[test]
    fn unknown_fields_are_rejected() {
        for bad in [
            r#"{"name": "x", "nodes": 4}"#,
            r#"{"name": "x", "options": {"skw": 0.1}}"#,
            r#"{"name": "x", "workload": {"queries": 2, "sale": 0.1}}"#,
            r#"{"name": "x", "strategies": ["XP"]}"#,
            r#"{"name": "x", "strategies": [{"FP": 0.1, "error_rate": 0.3}]}"#,
            r#"{"name": "x", "metric": "fastness"}"#,
            r#"{"name": "x", "sweep": {"axis": "speed", "values": [1]}}"#,
        ] {
            assert!(ScenarioSpec::from_json(bad).is_err(), "accepted {bad}");
        }
        assert!(ScenarioSpec::from_json(r#"{"title": "no name"}"#).is_err());
    }

    #[test]
    fn mix_workloads_parse_with_defaults_and_round_trip() {
        let spec = ScenarioSpec::from_json(
            r#"{"name": "mini-mix", "workload": {"mix": {"queries": 3, "policy": "fcfs",
                "arrival_gap_secs": 0.25, "priorities": [2, 1], "skews": [0.1, 0.9]}}}"#,
        )
        .unwrap();
        let WorkloadSpec::Mix(mix) = &spec.workload else {
            panic!("expected a mix workload");
        };
        assert_eq!(mix.queries, 3);
        assert_eq!(mix.policy, MixPolicy::Fcfs);
        assert_eq!(mix.arrival_gap_secs, 0.25);
        assert_eq!(mix.priorities, vec![2, 1]);
        assert_eq!(mix.skews, vec![0.1, 0.9]);
        // Unset generation knobs inherit the defaults.
        assert_eq!(mix.relations, MixSpec::default().relations);
        // Mix workloads derive the mix presentation.
        assert!(matches!(spec.presentation, Presentation::Mix(_)));
        assert_eq!(ScenarioSpec::from_json(&spec.to_json()).unwrap(), spec);
    }

    #[test]
    fn open_workloads_parse_with_defaults_and_round_trip() {
        let spec = ScenarioSpec::from_json(
            r#"{"name": "mini-open", "workload": {"open": {"kind": "bursty",
                "rate_qps": 32.5, "burstiness": 0.6, "queries": 200,
                "concurrency": 8, "priority_classes": 2}}}"#,
        )
        .unwrap();
        let WorkloadSpec::Open(open) = &spec.workload else {
            panic!("expected an open workload");
        };
        assert_eq!(open.kind, ArrivalKind::Bursty);
        assert_eq!(open.rate_qps, 32.5);
        assert_eq!(open.burstiness, 0.6);
        assert_eq!(open.queries, 200);
        assert_eq!(open.concurrency, 8);
        assert_eq!(open.priority_classes, 2);
        // Unset generation knobs inherit the defaults.
        assert_eq!(open.templates, OpenSpec::default().templates);
        assert_eq!(open.relations, OpenSpec::default().relations);
        // Open workloads derive the open presentation.
        assert!(matches!(spec.presentation, Presentation::Open(_)));
        assert_eq!(ScenarioSpec::from_json(&spec.to_json()).unwrap(), spec);
        // Front-end knobs stay off their inert defaults' keys: a spec that
        // never set them serializes without them.
        let text = spec.to_json();
        for absent in [
            "template_skew",
            "cache_capacity",
            "cache_ttl_secs",
            "coalesce",
            "fanout_cost_secs",
        ] {
            assert!(!text.contains(absent), "inert spec emitted {absent:?}");
        }
    }

    #[test]
    fn open_frontend_knobs_parse_and_round_trip() {
        let spec = ScenarioSpec::from_json(
            r#"{"name": "fe", "workload": {"open": {"template_skew": 0.7,
                "cache_capacity": 4, "cache_ttl_secs": 0.25, "coalesce": true,
                "fanout_cost_secs": 0.002}}}"#,
        )
        .unwrap();
        let WorkloadSpec::Open(open) = &spec.workload else {
            panic!("expected an open workload");
        };
        assert_eq!(open.template_skew, 0.7);
        assert_eq!(open.cache_capacity, 4);
        assert_eq!(open.cache_ttl_secs, 0.25);
        assert!(open.coalesce);
        assert_eq!(open.fanout_cost_secs, 0.002);
        assert_eq!(ScenarioSpec::from_json(&spec.to_json()).unwrap(), spec);
        // An absent TTL means "never expires" — and an infinite TTL (the
        // default) round-trips by omitting the key again.
        let cache_only = ScenarioSpec::from_json(
            r#"{"name": "fe2", "workload": {"open": {"cache_capacity": 2}}}"#,
        )
        .unwrap();
        let WorkloadSpec::Open(open) = &cache_only.workload else {
            panic!("expected an open workload");
        };
        assert_eq!(open.cache_ttl_secs, f64::INFINITY);
        assert!(!cache_only.to_json().contains("cache_ttl_secs"));
        assert_eq!(
            ScenarioSpec::from_json(&cache_only.to_json()).unwrap(),
            cache_only
        );
    }

    #[test]
    fn bad_open_fields_are_rejected() {
        for bad in [
            r#"{"name": "x", "workload": {"open": {"knd": "poisson"}}}"#,
            r#"{"name": "x", "workload": {"open": {"kind": "uniform"}}}"#,
            r#"{"name": "x", "workload": {"open": {"rate_qps": -3}}}"#,
            r#"{"name": "x", "workload": {"open": {"burstiness": 1.5}}}"#,
            r#"{"name": "x", "workload": {"open": {"concurrency": 0}}}"#,
            r#"{"name": "x", "workload": {"open": {"template_skew": 1.5}}}"#,
            r#"{"name": "x", "workload": {"open": {"cache_ttl_secs": 0}}}"#,
            r#"{"name": "x", "workload": {"open": {"coalesce": "yes"}}}"#,
            r#"{"name": "x", "workload": {"open": {"fanout_cost_secs": -1}}}"#,
            r#"{"name": "x", "workload": {"open": {}, "queries": 2}}"#,
            r#"{"name": "x", "workload": {"open": {}}, "strategies": ["SP"],
                "machine": {"nodes": 1}}"#,
        ] {
            assert!(ScenarioSpec::from_json(bad).is_err(), "accepted {bad}");
        }
        // The arrival axes parse but need an open workload to act on.
        let err = ScenarioSpec::from_json(
            r#"{"name": "x", "sweep": {"axis": "arrival_rate_qps", "values": [10]}}"#,
        )
        .unwrap_err();
        assert!(
            matches!(err, DlbError::InvalidConfig(ref m) if m.contains("open workload")),
            "{err}"
        );
    }

    #[test]
    fn machine_memory_and_new_axes_round_trip() {
        let spec = ScenarioSpec::from_json(
            r#"{"name": "mem", "machine": {"nodes": 2, "memory_per_node_mb": 128},
                "sweep": {"axis": "memory_per_node_mb", "values": [64, 8]}}"#,
        )
        .unwrap();
        assert_eq!(spec.machine.memory_per_node_mb, Some(128));
        assert_eq!(spec.rows.axis, Axis::MemoryPerNode);
        assert_eq!(ScenarioSpec::from_json(&spec.to_json()).unwrap(), spec);
        // A spec without the memory field keeps serializing without it.
        let plain = ScenarioSpec::from_json(r#"{"name": "plain"}"#).unwrap();
        assert!(!plain.to_json().contains("memory_per_node_mb"));
    }

    #[test]
    fn unsupported_axis_combinations_error_via_dlb_error() {
        // Regression (scenario --export / --spec): an unknown axis is a
        // parse error, and a known axis on a workload that cannot support it
        // is a validation error — never a panic deeper in the driver.
        let unknown = ScenarioSpec::from_json(
            r#"{"name": "x", "sweep": {"axis": "speed_of_light", "values": [1]}}"#,
        )
        .unwrap_err();
        assert!(matches!(unknown, DlbError::Parse(_)), "{unknown}");
        let unsupported = ScenarioSpec::from_json(
            r#"{"name": "x", "sweep": {"axis": "concurrent_queries", "values": [2, 4]}}"#,
        )
        .unwrap_err();
        assert!(
            matches!(unsupported, DlbError::InvalidConfig(ref m) if m.contains("mix workload")),
            "{unsupported}"
        );
    }

    #[test]
    fn bad_mix_fields_are_rejected() {
        for bad in [
            r#"{"name": "x", "workload": {"mix": {"polcy": "fcfs"}}}"#,
            r#"{"name": "x", "workload": {"mix": {"policy": "shortest-job"}}}"#,
            r#"{"name": "x", "workload": {"mix": {"priorities": [0]}}}"#,
            r#"{"name": "x", "workload": {"mix": {"skews": [3.0]}}}"#,
            r#"{"name": "x", "workload": {"mix": {"arrival_gap_secs": -2}}}"#,
            r#"{"name": "x", "workload": {"mix": {}, "queries": 2}}"#,
        ] {
            assert!(ScenarioSpec::from_json(bad).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn empty_strategy_sets_error_instead_of_panicking() {
        // No explicit reference: the default would look up strategies[0].
        let err = ScenarioSpec::from_json(r#"{"name": "x", "strategies": []}"#);
        assert!(err.is_err());
        // With an explicit reference the spec parses but validation rejects.
        let err =
            ScenarioSpec::from_json(r#"{"name": "x", "strategies": [], "reference": "first_row"}"#);
        assert!(err.is_err());
    }

    #[test]
    fn parsed_specs_are_validated() {
        // Structurally well-formed JSON, semantically invalid: SP on a
        // multi-node machine.
        let bad = r#"{"name": "x", "machine": {"nodes": 4}, "strategies": ["SP"]}"#;
        assert!(ScenarioSpec::from_json(bad).is_err());
    }

    #[test]
    fn fp_strategies_carry_their_error_rate() {
        let spec =
            ScenarioSpec::from_json(r#"{"name": "x", "strategies": ["DP", {"FP": 0.25}, "FP"]}"#)
                .unwrap();
        assert_eq!(
            spec.strategies,
            vec![
                Strategy::dynamic(),
                Strategy::fixed(0.25),
                Strategy::fixed(0.0)
            ]
        );
    }
}
