//! Bushy join trees.
//!
//! The paper concentrates on bushy trees "because they offer the best
//! opportunities to minimize the size of intermediate results and to exploit
//! all kinds of parallelism" (§2.2). A [`JoinTree`] is a binary tree whose
//! leaves are base relations and whose internal nodes are hash joins; every
//! node carries its estimated output cardinality. The *build* side of a join
//! is its smaller input (standard hash-join practice), the *probe* side the
//! larger one.

use dlb_common::RelationId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A bushy join tree annotated with estimated cardinalities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JoinTree {
    /// A base relation scan.
    Leaf {
        /// The scanned relation.
        relation: RelationId,
        /// Cardinality of the relation.
        cardinality: u64,
    },
    /// A hash join of two subtrees.
    Join {
        /// Build side (hash table built on this input; the smaller one).
        build: Box<JoinTree>,
        /// Probe side (streamed against the hash table).
        probe: Box<JoinTree>,
        /// Estimated output cardinality.
        cardinality: u64,
    },
}

impl JoinTree {
    /// Creates a leaf.
    pub fn leaf(relation: RelationId, cardinality: u64) -> Self {
        JoinTree::Leaf {
            relation,
            cardinality,
        }
    }

    /// Creates a join node, putting the smaller input on the build side.
    pub fn join(a: JoinTree, b: JoinTree, selectivity: f64) -> Self {
        let card = ((a.cardinality() as f64) * (b.cardinality() as f64) * selectivity)
            .round()
            .max(1.0) as u64;
        let (build, probe) = if a.cardinality() <= b.cardinality() {
            (a, b)
        } else {
            (b, a)
        };
        JoinTree::Join {
            build: Box::new(build),
            probe: Box::new(probe),
            cardinality: card,
        }
    }

    /// Estimated output cardinality of this subtree.
    pub fn cardinality(&self) -> u64 {
        match self {
            JoinTree::Leaf { cardinality, .. } | JoinTree::Join { cardinality, .. } => *cardinality,
        }
    }

    /// The set of base relations appearing in this subtree.
    pub fn relations(&self) -> BTreeSet<RelationId> {
        let mut out = BTreeSet::new();
        self.collect_relations(&mut out);
        out
    }

    fn collect_relations(&self, out: &mut BTreeSet<RelationId>) {
        match self {
            JoinTree::Leaf { relation, .. } => {
                out.insert(*relation);
            }
            JoinTree::Join { build, probe, .. } => {
                build.collect_relations(out);
                probe.collect_relations(out);
            }
        }
    }

    /// Number of joins (internal nodes).
    pub fn join_count(&self) -> usize {
        match self {
            JoinTree::Leaf { .. } => 0,
            JoinTree::Join { build, probe, .. } => 1 + build.join_count() + probe.join_count(),
        }
    }

    /// Number of leaves (base relations, counting duplicates).
    pub fn leaf_count(&self) -> usize {
        match self {
            JoinTree::Leaf { .. } => 1,
            JoinTree::Join { build, probe, .. } => build.leaf_count() + probe.leaf_count(),
        }
    }

    /// Height of the tree (a leaf has height 1).
    pub fn height(&self) -> usize {
        match self {
            JoinTree::Leaf { .. } => 1,
            JoinTree::Join { build, probe, .. } => 1 + build.height().max(probe.height()),
        }
    }

    /// Sum of the cardinalities of all intermediate results (the classic
    /// optimizer objective: smaller is better).
    pub fn intermediate_size(&self) -> u64 {
        match self {
            JoinTree::Leaf { .. } => 0,
            JoinTree::Join {
                build,
                probe,
                cardinality,
            } => cardinality + build.intermediate_size() + probe.intermediate_size(),
        }
    }

    /// True when the tree is a left-deep chain (every probe side is a leaf or
    /// every build side is a leaf); used to characterize generated shapes.
    pub fn is_bushy(&self) -> bool {
        match self {
            JoinTree::Leaf { .. } => false,
            JoinTree::Join { build, probe, .. } => {
                let both_joins = matches!(**build, JoinTree::Join { .. })
                    && matches!(**probe, JoinTree::Join { .. });
                both_joins || build.is_bushy() || probe.is_bushy()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> RelationId {
        RelationId::new(i)
    }

    #[test]
    fn join_puts_smaller_input_on_build_side() {
        let small = JoinTree::leaf(r(0), 100);
        let big = JoinTree::leaf(r(1), 10_000);
        let j = JoinTree::join(big.clone(), small.clone(), 1.0 / 10_000.0);
        match &j {
            JoinTree::Join { build, probe, .. } => {
                assert_eq!(build.cardinality(), 100);
                assert_eq!(probe.cardinality(), 10_000);
            }
            _ => panic!("expected join"),
        }
        // 100 * 10_000 * 1e-4 = 100
        assert_eq!(j.cardinality(), 100);
    }

    #[test]
    fn tree_statistics() {
        let t = JoinTree::join(
            JoinTree::join(
                JoinTree::leaf(r(0), 1_000),
                JoinTree::leaf(r(1), 2_000),
                1.0 / 2_000.0,
            ),
            JoinTree::join(
                JoinTree::leaf(r(2), 500),
                JoinTree::leaf(r(3), 4_000),
                1.0 / 4_000.0,
            ),
            1.0 / 1_000.0,
        );
        assert_eq!(t.join_count(), 3);
        assert_eq!(t.leaf_count(), 4);
        assert_eq!(t.height(), 3);
        assert_eq!(t.relations().len(), 4);
        assert!(t.is_bushy());
        assert!(t.intermediate_size() > 0);
        // cardinality never reported as zero
        assert!(t.cardinality() >= 1);
    }

    #[test]
    fn left_deep_tree_is_not_bushy() {
        let t = JoinTree::join(
            JoinTree::join(JoinTree::leaf(r(0), 10), JoinTree::leaf(r(1), 20), 0.05),
            JoinTree::leaf(r(2), 30),
            0.05,
        );
        assert!(!t.is_bushy());
        assert_eq!(t.height(), 3);
    }

    #[test]
    fn cardinality_is_at_least_one() {
        let j = JoinTree::join(JoinTree::leaf(r(0), 10), JoinTree::leaf(r(1), 10), 1e-9);
        assert_eq!(j.cardinality(), 1);
    }
}
