//! Parallel execution plans.
//!
//! A parallel execution plan (§2.2) is an operator tree adorned with
//! *operator scheduling* — a partial order over operators where `A < B` means
//! B cannot start before A has terminated — and *operator homes* — the set of
//! SM-nodes allowed to execute each operator.
//!
//! The partial order always contains the hash constraints
//! (`build_i < probe_i`). Two optional heuristics from the paper's Figure 2
//! are supported:
//!
//! 1. a pipeline chain starts only when all the hash tables it probes are
//!    ready (`build < first-scan-of-chain`),
//! 2. pipeline chains execute one at a time (`last-of-chain_k <
//!    first-of-chain_{k+1}` for a dependency-compatible chain order).
//!
//! Operator homes respect the constraints of §2.2: the home of a scan is the
//! home of the scanned relation, and the build and probe of the same join
//! share their home.

use crate::optree::{OperatorTree, PipelineChain};
use dlb_common::{DlbError, NodeId, OperatorId, QueryId, Result};
use dlb_storage::partition::RelationHome;
use dlb_storage::Catalog;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One precedence constraint: `after` cannot start before `before` ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ScheduleConstraint {
    /// The operator that must terminate first.
    pub before: OperatorId,
    /// The operator that must wait.
    pub after: OperatorId,
}

/// The home (set of SM-nodes) of every operator of a plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatorHomes {
    homes: BTreeMap<u32, RelationHome>,
}

impl OperatorHomes {
    /// Homes every operator on all `nodes` SM-nodes — the assumption of the
    /// paper's evaluation ("all SM-nodes are allocated to all operators").
    pub fn all_nodes(tree: &OperatorTree, nodes: u32) -> Self {
        let homes = tree
            .operators()
            .iter()
            .map(|op| (op.id.0, RelationHome::all_nodes(nodes)))
            .collect();
        Self { homes }
    }

    /// Derives homes from a catalog: a scan is homed where its relation is
    /// stored; a join's build and probe share the union of their inputs'
    /// homes (which guarantees the §2.2 constraints by construction).
    pub fn from_catalog(tree: &OperatorTree, catalog: &Catalog, fallback_nodes: u32) -> Self {
        let mut output_home: BTreeMap<u32, RelationHome> = BTreeMap::new();
        let mut homes: BTreeMap<u32, RelationHome> = BTreeMap::new();

        // Operators are stored in expansion order: children always precede
        // their consumers, so one forward pass suffices.
        for op in tree.operators() {
            match op.kind {
                crate::optree::OperatorKind::Scan { relation } => {
                    let home = catalog
                        .home(relation)
                        .cloned()
                        .unwrap_or_else(|_| RelationHome::all_nodes(fallback_nodes));
                    homes.insert(op.id.0, home.clone());
                    output_home.insert(op.id.0, home);
                }
                crate::optree::OperatorKind::Build { .. } => {
                    // Resolved when the matching probe is visited.
                }
                crate::optree::OperatorKind::Probe { .. } => {
                    let build = op.hash_source.expect("probe has a hash source");
                    let build_producer = tree.pipelined_producers(build);
                    let probe_producer = tree.pipelined_producers(op.id);
                    let build_in = build_producer
                        .first()
                        .and_then(|p| output_home.get(&p.0))
                        .cloned()
                        .unwrap_or_else(|| RelationHome::all_nodes(fallback_nodes));
                    let probe_in = probe_producer
                        .first()
                        .and_then(|p| output_home.get(&p.0))
                        .cloned()
                        .unwrap_or_else(|| RelationHome::all_nodes(fallback_nodes));
                    let join_home = build_in.union(&probe_in);
                    homes.insert(build.0, join_home.clone());
                    homes.insert(op.id.0, join_home.clone());
                    output_home.insert(op.id.0, join_home);
                }
            }
        }
        Self { homes }
    }

    /// Home of operator `op`.
    pub fn home(&self, op: OperatorId) -> &RelationHome {
        &self.homes[&op.0]
    }

    /// True when `node` may execute `op`.
    pub fn allows(&self, op: OperatorId, node: NodeId) -> bool {
        self.homes
            .get(&op.0)
            .map(|h| h.contains(node))
            .unwrap_or(false)
    }

    /// Number of operators with a recorded home.
    pub fn len(&self) -> usize {
        self.homes.len()
    }

    /// True when no homes are recorded.
    pub fn is_empty(&self) -> bool {
        self.homes.is_empty()
    }
}

/// Scheduling policy for pipeline chains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChainScheduling {
    /// Heuristics 1 and 2: chains wait for their hash tables and run one at a
    /// time (the paper's evaluation assumption).
    OneAtATime,
    /// Heuristic 1 only: chains wait for their hash tables but may run
    /// concurrently (more concurrent operators, more memory).
    Concurrent,
}

/// A complete parallel execution plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParallelPlan {
    /// The query this plan answers.
    pub query: QueryId,
    /// The operator tree.
    pub tree: OperatorTree,
    /// Operator scheduling: a partial order over operators.
    pub schedule: Vec<ScheduleConstraint>,
    /// Operator homes.
    pub homes: OperatorHomes,
    /// How pipeline chains were scheduled.
    pub chain_scheduling: ChainScheduling,
}

impl ParallelPlan {
    /// Builds a plan from an operator tree: computes the schedule constraints
    /// (hash constraints plus the requested chain heuristics) and validates
    /// the result.
    pub fn build(
        query: QueryId,
        tree: OperatorTree,
        homes: OperatorHomes,
        chain_scheduling: ChainScheduling,
    ) -> Result<Self> {
        let mut schedule = Vec::new();

        // Hash constraints: build_i < probe_i.
        for (build, probe) in tree.joins().values() {
            schedule.push(ScheduleConstraint {
                before: *build,
                after: *probe,
            });
        }

        // Heuristic 1: a chain starts only when all hash tables probed along
        // it are ready.
        for chain in tree.chains() {
            let first = chain.first();
            for &op in &chain.operators {
                if let Some(build) = tree.operator(op).hash_source {
                    if build != first {
                        schedule.push(ScheduleConstraint {
                            before: build,
                            after: first,
                        });
                    }
                }
            }
        }

        // Heuristic 2: chains one at a time, in a dependency-compatible order.
        if chain_scheduling == ChainScheduling::OneAtATime {
            let order = chain_dependency_order(&tree)?;
            for pair in order.windows(2) {
                let prev = &tree.chains()[pair[0].index()];
                let next = &tree.chains()[pair[1].index()];
                schedule.push(ScheduleConstraint {
                    before: prev.last(),
                    after: next.first(),
                });
            }
        }

        schedule.sort_unstable();
        schedule.dedup();

        let plan = Self {
            query,
            tree,
            schedule,
            homes,
            chain_scheduling,
        };
        plan.validate()?;
        Ok(plan)
    }

    /// Operators that must terminate before `op` may start.
    pub fn blocked_by(&self, op: OperatorId) -> Vec<OperatorId> {
        self.schedule
            .iter()
            .filter(|c| c.after == op)
            .map(|c| c.before)
            .collect()
    }

    /// Operators whose start is gated by the termination of `op`.
    pub fn blocks(&self, op: OperatorId) -> Vec<OperatorId> {
        self.schedule
            .iter()
            .filter(|c| c.before == op)
            .map(|c| c.after)
            .collect()
    }

    /// Checks structural invariants: the schedule partial order is acyclic
    /// and consistent with dataflow, every operator has a home, and the
    /// build/probe of each join share their home.
    pub fn validate(&self) -> Result<()> {
        let n = self.tree.operators().len();
        if n == 0 {
            return Err(DlbError::plan("plan has no operators"));
        }
        // Every operator must have a home.
        for op in self.tree.operators() {
            if !self
                .homes
                .homes
                .get(&op.id.0)
                .map(|h| !h.is_empty())
                .unwrap_or(false)
            {
                return Err(DlbError::plan(format!("operator {} has no home", op.id)));
            }
        }
        // Build and probe of the same join share their home.
        for (build, probe) in self.tree.joins().values() {
            if self.homes.home(*build) != self.homes.home(*probe) {
                return Err(DlbError::plan(format!(
                    "join operators {build} and {probe} have different homes"
                )));
            }
        }
        // The schedule (plus pipelined dataflow edges, which also impose
        // ordering of *starts*) must be acyclic over operators.
        let mut indegree = vec![0usize; n];
        let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];
        for c in &self.schedule {
            if c.before.index() >= n || c.after.index() >= n {
                return Err(DlbError::plan("schedule references unknown operator"));
            }
            adjacency[c.before.index()].push(c.after.index());
            indegree[c.after.index()] += 1;
        }
        let mut queue: VecDeque<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut visited = 0;
        while let Some(i) = queue.pop_front() {
            visited += 1;
            for &j in &adjacency[i] {
                indegree[j] -= 1;
                if indegree[j] == 0 {
                    queue.push_back(j);
                }
            }
        }
        if visited != n {
            return Err(DlbError::plan("schedule constraints contain a cycle"));
        }
        Ok(())
    }

    /// The pipeline chains of the plan.
    pub fn chains(&self) -> &[PipelineChain] {
        self.tree.chains()
    }

    /// Total tuples flowing through the plan (inputs of every operator),
    /// a rough measure of total work used by reports.
    pub fn total_input_tuples(&self) -> u64 {
        self.tree.operators().iter().map(|o| o.input_tuples).sum()
    }
}

/// Orders chains so that a chain producing a hash table precedes every chain
/// probing that table; ties are broken by chain id (deterministic).
fn chain_dependency_order(tree: &OperatorTree) -> Result<Vec<dlb_common::PipelineChainId>> {
    let chains = tree.chains();
    let k = chains.len();
    // deps[x] = set of chains that must run before chain x.
    let mut deps: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); k];
    for (idx, chain) in chains.iter().enumerate() {
        for &op in &chain.operators {
            if let Some(build) = tree.operator(op).hash_source {
                let producer_chain = tree.operator(build).chain.index();
                if producer_chain != idx {
                    deps[idx].insert(producer_chain);
                }
            }
        }
    }
    let mut order = Vec::with_capacity(k);
    let mut done: BTreeSet<usize> = BTreeSet::new();
    while order.len() < k {
        // Pick the smallest-id chain whose dependencies are all done.
        let next = (0..k)
            .find(|i| !done.contains(i) && deps[*i].iter().all(|d| done.contains(d)))
            .ok_or_else(|| DlbError::plan("cyclic dependency between pipeline chains"))?;
        done.insert(next);
        order.push(dlb_common::PipelineChainId::from(next));
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jointree::JoinTree;
    use crate::optree::OperatorKind;
    use dlb_common::RelationId;

    fn r(i: u32) -> RelationId {
        RelationId::new(i)
    }

    fn figure2_tree() -> JoinTree {
        let rs = JoinTree::join(
            JoinTree::leaf(r(0), 1_000),
            JoinTree::leaf(r(1), 2_000),
            1.0 / 2_000.0,
        );
        let tu = JoinTree::join(
            JoinTree::leaf(r(2), 1_500),
            JoinTree::leaf(r(3), 3_000),
            1.0 / 3_000.0,
        );
        JoinTree::join(rs, tu, 1.0 / 1_500.0)
    }

    fn figure2_plan(chain_scheduling: ChainScheduling) -> ParallelPlan {
        let tree = OperatorTree::from_join_tree(&figure2_tree());
        let homes = OperatorHomes::all_nodes(&tree, 3);
        ParallelPlan::build(QueryId::new(0), tree, homes, chain_scheduling).unwrap()
    }

    #[test]
    fn hash_constraints_present_for_every_join() {
        let plan = figure2_plan(ChainScheduling::Concurrent);
        for (build, probe) in plan.tree.joins().values() {
            assert!(plan.blocked_by(*probe).contains(build));
        }
    }

    #[test]
    fn heuristic1_gates_chains_on_their_hash_tables() {
        let plan = figure2_plan(ChainScheduling::Concurrent);
        for chain in plan.chains() {
            let first = chain.first();
            for &op in &chain.operators {
                if let Some(build) = plan.tree.operator(op).hash_source {
                    if build != first {
                        assert!(
                            plan.blocked_by(first).contains(&build),
                            "chain start {first} not gated on {build}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn one_at_a_time_scheduling_orders_all_chains() {
        let plan = figure2_plan(ChainScheduling::OneAtATime);
        // With k chains there must be at least k-1 chain-ordering constraints
        // beyond the hash constraints (some may coincide with heuristic 1).
        assert!(plan.schedule.len() >= plan.chains().len() - 1 + plan.tree.joins().len());
        plan.validate().unwrap();
        // The schedule is acyclic and the plan validates; additionally the
        // root's chain must come last: its first operator is blocked by some
        // operator of every other chain's terminating build (transitively).
        let root_chain = plan.tree.chain_of(plan.tree.root()).id;
        let order = chain_dependency_order(&plan.tree).unwrap();
        assert_eq!(*order.last().unwrap(), root_chain);
    }

    #[test]
    fn concurrent_scheduling_has_fewer_constraints() {
        let one = figure2_plan(ChainScheduling::OneAtATime);
        let conc = figure2_plan(ChainScheduling::Concurrent);
        assert!(conc.schedule.len() <= one.schedule.len());
    }

    #[test]
    fn homes_all_nodes_cover_every_operator() {
        let plan = figure2_plan(ChainScheduling::OneAtATime);
        assert_eq!(plan.homes.len(), plan.tree.operators().len());
        for op in plan.tree.operators() {
            assert!(plan.homes.allows(op.id, NodeId::new(0)));
            assert!(plan.homes.allows(op.id, NodeId::new(2)));
            assert!(!plan.homes.allows(op.id, NodeId::new(3)));
        }
        assert!(!plan.homes.is_empty());
    }

    #[test]
    fn homes_from_catalog_respect_scan_placement_and_join_equality() {
        use dlb_storage::partition::PartitionLayout;
        use dlb_storage::relation::{RelationDef, SizeClass};

        let tree = OperatorTree::from_join_tree(&figure2_tree());
        let mut catalog = Catalog::new();
        // R and S on node 0, T and U on node 1.
        for (i, node) in [(0u32, 0u32), (1, 0), (2, 1), (3, 1)] {
            let def = RelationDef::new(r(i), format!("R{i}"), 1_000, SizeClass::Small);
            let layout =
                PartitionLayout::compute(&def, RelationHome::new(vec![NodeId::new(node)]), 1, 0.0);
            catalog.register(def, layout);
        }
        let homes = OperatorHomes::from_catalog(&tree, &catalog, 2);
        // Scan homes follow the relation placement.
        for op in tree.operators() {
            if let OperatorKind::Scan { relation } = op.kind {
                assert_eq!(
                    homes.home(op.id),
                    catalog.home(relation).unwrap(),
                    "scan home must equal relation home"
                );
            }
        }
        // Build/probe pairs share a home, and the top join spans both nodes.
        let plan =
            ParallelPlan::build(QueryId::new(1), tree, homes, ChainScheduling::OneAtATime).unwrap();
        let root_home = plan.homes.home(plan.tree.root());
        assert_eq!(root_home.len(), 2);
    }

    #[test]
    fn validation_rejects_cyclic_schedules() {
        let mut plan = figure2_plan(ChainScheduling::Concurrent);
        let a = plan.tree.operators()[0].id;
        let b = plan.tree.operators()[1].id;
        plan.schedule.push(ScheduleConstraint {
            before: a,
            after: b,
        });
        plan.schedule.push(ScheduleConstraint {
            before: b,
            after: a,
        });
        assert!(plan.validate().is_err());
    }

    #[test]
    fn blocks_is_inverse_of_blocked_by() {
        let plan = figure2_plan(ChainScheduling::OneAtATime);
        for c in &plan.schedule {
            assert!(plan.blocks(c.before).contains(&c.after));
            assert!(plan.blocked_by(c.after).contains(&c.before));
        }
        assert!(plan.total_input_tuples() > 0);
    }
}
