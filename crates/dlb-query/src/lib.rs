//! # dlb-query
//!
//! Query workloads and parallel execution plans for the hierdb workspace.
//!
//! This crate implements the query side of the paper:
//!
//! * [`graph`] — predicate connection graphs (which relations join with
//!   which, and with what selectivity),
//! * [`generator`] — the random workload generator of §5.1.2 (20 queries ×
//!   12 relations, small/medium/large cardinalities, selectivities drawn
//!   around `1 / max(|R|,|S|)`),
//! * [`cost`] — the cost model used by the optimizer and by the Fixed
//!   Processing strategy's static processor allocation (with optional error
//!   injection, §5.2.1),
//! * [`jointree`] — bushy join trees and their cardinality/cost estimation,
//! * [`optimizer`] — a randomized bushy-tree optimizer that keeps the two
//!   best trees per query, mirroring how the paper retains "the two best
//!   bushy operator trees" from the DBS3 optimizer,
//! * [`optree`] — macro-expansion of a join tree into an operator tree
//!   (scan/build/probe, blocking vs pipelinable edges), pipeline-chain
//!   decomposition, operator scheduling heuristics and operator homes,
//! * [`plan`] — the parallel execution plan handed to the execution engines.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cost;
pub mod generator;
pub mod graph;
pub mod jointree;
pub mod optimizer;
pub mod optree;
pub mod plan;

pub use cost::CostModel;
pub use generator::{Query, WorkloadGenerator, WorkloadParams};
pub use graph::PredicateGraph;
pub use jointree::JoinTree;
pub use optimizer::{Optimizer, OptimizerParams};
pub use optree::{EdgeKind, Operator, OperatorKind, OperatorTree, PipelineChain};
pub use plan::{OperatorHomes, ParallelPlan, ScheduleConstraint};
