//! Bushy-tree optimizer.
//!
//! The paper runs each generated query through the DBS3 optimizer and keeps
//! the two best bushy operator trees (§5.1.2). This module reproduces that
//! step with a randomized enumerator:
//!
//! * candidate trees are built bottom-up by repeatedly joining two
//!   *connected* components of the predicate graph (never introducing a
//!   Cartesian product),
//! * a greedy candidate always joins the pair with the smallest estimated
//!   output, randomized candidates pick among connected pairs at random,
//! * candidates are ranked by the sum of intermediate result sizes (the
//!   classical objective that bushy trees are meant to minimize) and the
//!   requested number of best trees is retained.

use crate::cost::CostModel;
use crate::generator::Query;
use crate::jointree::JoinTree;
use dlb_common::rng::stream_rng;
use dlb_common::{DlbError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Parameters of the optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimizerParams {
    /// Number of randomized candidates enumerated per query (in addition to
    /// the greedy candidate).
    pub candidates: usize,
    /// Number of best trees retained per query (paper: 2).
    pub keep_best: usize,
    /// Seed of the randomized enumeration.
    pub seed: u64,
}

impl Default for OptimizerParams {
    fn default() -> Self {
        Self {
            candidates: 48,
            keep_best: 2,
            seed: 0x0BB_5EED,
        }
    }
}

/// The bushy-tree optimizer.
#[derive(Debug, Clone)]
pub struct Optimizer {
    params: OptimizerParams,
    cost: CostModel,
}

impl Optimizer {
    /// Creates an optimizer.
    pub fn new(params: OptimizerParams, cost: CostModel) -> Self {
        Self { params, cost }
    }

    /// Creates an optimizer with default parameters and cost model.
    pub fn with_defaults() -> Self {
        Self::new(OptimizerParams::default(), CostModel::default())
    }

    /// The cost model used for ranking.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Optimizes a query, returning its `keep_best` best bushy trees (best
    /// first). Fails if the predicate graph is not connected.
    pub fn optimize(&self, query: &Query) -> Result<Vec<JoinTree>> {
        if !query.graph.is_connected() {
            return Err(DlbError::plan(format!(
                "query {} has a disconnected predicate graph",
                query.id
            )));
        }
        if query.relations.is_empty() {
            return Err(DlbError::plan("query has no relations"));
        }

        let mut candidates = Vec::with_capacity(self.params.candidates + 1);
        candidates.push(self.build_tree::<rand::rngs::StdRng>(query, None)?);
        let mut rng = stream_rng(self.params.seed, query.id.0 as u64);
        for _ in 0..self.params.candidates {
            candidates.push(self.build_tree(query, Some(&mut rng))?);
        }

        // Rank by intermediate size, then by estimated sequential time as a
        // tie-breaker, and deduplicate identical shapes.
        candidates.sort_by(|a, b| {
            (a.intermediate_size(), self.cost.tree_cost(a).instructions)
                .cmp(&(b.intermediate_size(), self.cost.tree_cost(b).instructions))
        });
        candidates.dedup();
        candidates.truncate(self.params.keep_best.max(1));
        Ok(candidates)
    }

    /// Builds one candidate tree. With `rng = None` the construction is
    /// greedy (always join the connected pair with the smallest output);
    /// otherwise the pair is chosen at random among connected pairs.
    fn build_tree<R: Rng>(&self, query: &Query, mut rng: Option<&mut R>) -> Result<JoinTree> {
        // Each component is (set of relations, subtree).
        let mut components: Vec<(BTreeSet<_>, JoinTree)> = query
            .relations
            .iter()
            .map(|r| {
                let mut set = BTreeSet::new();
                set.insert(r.id);
                (set, JoinTree::leaf(r.id, r.cardinality))
            })
            .collect();

        while components.len() > 1 {
            // Enumerate joinable (connected) pairs.
            let mut pairs: Vec<(usize, usize, f64, u64)> = Vec::new();
            for i in 0..components.len() {
                for j in (i + 1)..components.len() {
                    if let Some(sel) = query
                        .graph
                        .crossing_selectivity(&components[i].0, &components[j].0)
                    {
                        let out = ((components[i].1.cardinality() as f64)
                            * (components[j].1.cardinality() as f64)
                            * sel)
                            .round()
                            .max(1.0) as u64;
                        pairs.push((i, j, sel, out));
                    }
                }
            }
            if pairs.is_empty() {
                return Err(DlbError::plan(
                    "no connected pair of components: predicate graph is disconnected",
                ));
            }
            let chosen = match rng.as_deref_mut() {
                None => pairs
                    .iter()
                    .min_by_key(|(_, _, _, out)| *out)
                    .copied()
                    .expect("pairs not empty"),
                Some(rng) => pairs[rng.random_range(0..pairs.len())],
            };
            let (i, j, sel, _) = chosen;
            // Remove j first (larger index) to keep i valid.
            let (set_j, tree_j) = components.remove(j);
            let (set_i, tree_i) = components.remove(i);
            let mut merged = set_i;
            merged.extend(set_j);
            components.push((merged, JoinTree::join(tree_i, tree_j, sel)));
        }

        Ok(components.pop().expect("at least one component").1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{WorkloadGenerator, WorkloadParams};

    fn sample_query(relations: usize, seed: u64) -> Query {
        WorkloadGenerator::new(WorkloadParams::tiny(1, relations, seed))
            .generate()
            .remove(0)
    }

    #[test]
    fn optimizer_returns_requested_number_of_trees() {
        let q = sample_query(8, 11);
        let trees = Optimizer::with_defaults().optimize(&q).unwrap();
        assert_eq!(trees.len(), 2);
        for t in &trees {
            assert_eq!(t.leaf_count(), 8);
            assert_eq!(t.join_count(), 7);
            assert_eq!(t.relations().len(), 8);
        }
    }

    #[test]
    fn best_tree_is_ranked_first() {
        let q = sample_query(10, 3);
        let trees = Optimizer::with_defaults().optimize(&q).unwrap();
        assert!(trees[0].intermediate_size() <= trees[1].intermediate_size());
    }

    #[test]
    fn greedy_tree_never_beaten_by_explicitly_bad_choice() {
        // The greedy candidate is always part of the enumeration, so the best
        // returned tree can never be worse than it.
        let q = sample_query(9, 21);
        let opt = Optimizer::with_defaults();
        let greedy = opt.build_tree::<rand::rngs::StdRng>(&q, None).unwrap();
        let best = opt.optimize(&q).unwrap().remove(0);
        assert!(best.intermediate_size() <= greedy.intermediate_size());
    }

    #[test]
    fn optimization_is_deterministic() {
        let q = sample_query(12, 5);
        let a = Optimizer::with_defaults().optimize(&q).unwrap();
        let b = Optimizer::with_defaults().optimize(&q).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn single_relation_query_yields_a_leaf() {
        let q = sample_query(1, 2);
        let trees = Optimizer::with_defaults().optimize(&q).unwrap();
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].join_count(), 0);
    }

    #[test]
    fn disconnected_graph_is_rejected() {
        let mut q = sample_query(3, 9);
        // Break connectivity by replacing the graph with an edgeless one.
        q.graph = crate::graph::PredicateGraph::new(q.relations.iter().map(|r| r.id).collect());
        assert!(Optimizer::with_defaults().optimize(&q).is_err());
    }

    #[test]
    fn no_cartesian_products_in_produced_trees() {
        // Every join node must have at least one predicate edge crossing its
        // two children.
        fn check(tree: &JoinTree, q: &Query) {
            if let JoinTree::Join { build, probe, .. } = tree {
                let sel = q
                    .graph
                    .crossing_selectivity(&build.relations(), &probe.relations());
                assert!(sel.is_some(), "cartesian product found");
                check(build, q);
                check(probe, q);
            }
        }
        let q = sample_query(12, 17);
        for t in Optimizer::with_defaults().optimize(&q).unwrap() {
            check(&t, &q);
        }
    }
}
