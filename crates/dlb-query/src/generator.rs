//! Random workload generator (paper §5.1.2).
//!
//! The paper generates 20 queries, each involving 12 relations:
//!
//! 1. the predicate connection graph is a random acyclic connected graph
//!    (i.e. a random tree),
//! 2. each relation's cardinality is drawn from one of the small
//!    (10 K–20 K), medium (100 K–200 K) or large (1 M–2 M) classes,
//! 3. the join selectivity of edge (R,S) is drawn uniformly in
//!    `[0.5, 1.5] / max(|R|, |S|)`, so that a join result stays commensurate
//!    with its larger input,
//! 4. plans whose sequential response time falls outside a band are rejected
//!    and regenerated (the paper constrains 30–60 minutes of sequential
//!    time; the equivalent band under a scale factor is applied here).
//!
//! A global `scale` shrinks cardinalities so the same workload shape can run
//! at CI speed; `scale = 1.0` reproduces paper-size relations.

use crate::graph::PredicateGraph;
use dlb_common::rng::{stream_rng, uniform_f64, uniform_u64};
use dlb_common::{QueryId, RelationId};
use dlb_storage::relation::{RelationDef, SizeClass};
use rand::prelude::IndexedRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A generated multi-join query: its relations and predicate graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Identifier of the query within its workload.
    pub id: QueryId,
    /// The base relations referenced by the query.
    pub relations: Vec<RelationDef>,
    /// The predicate connection graph over those relations.
    pub graph: PredicateGraph,
}

impl Query {
    /// Looks up a relation definition of this query.
    pub fn relation(&self, id: RelationId) -> Option<&RelationDef> {
        self.relations.iter().find(|r| r.id == id)
    }

    /// Number of joins in the query (edges of the acyclic graph).
    pub fn join_count(&self) -> usize {
        self.graph.edges().len()
    }

    /// Total number of base tuples read by the query.
    pub fn base_tuples(&self) -> u64 {
        self.relations.iter().map(|r| r.cardinality).sum()
    }
}

/// Parameters of the workload generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadParams {
    /// Number of queries to generate (paper: 20).
    pub queries: usize,
    /// Relations per query (paper: 12).
    pub relations_per_query: usize,
    /// Scale factor applied to the paper's cardinality classes. 1.0 is paper
    /// scale; the default 0.01 keeps CI runs fast while preserving the
    /// relative class sizes.
    pub scale: f64,
    /// Attribute/redistribution skew factor recorded on every relation
    /// (0 = uniform). Engines may also override skew per experiment.
    pub skew: f64,
    /// Master seed: the whole workload is a pure function of this seed.
    pub seed: u64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        Self {
            queries: 20,
            relations_per_query: 12,
            scale: 0.01,
            skew: 0.0,
            seed: 0xD1B_1996,
        }
    }
}

impl WorkloadParams {
    /// Paper-scale parameters (20 × 12-relation queries over full-size
    /// relations). Slow: intended for the figure harness, not CI.
    pub fn paper() -> Self {
        Self {
            scale: 1.0,
            ..Self::default()
        }
    }

    /// A small workload for tests: `queries` queries of `relations` relations
    /// at 1/1000 scale.
    pub fn tiny(queries: usize, relations: usize, seed: u64) -> Self {
        Self {
            queries,
            relations_per_query: relations,
            scale: 0.001,
            skew: 0.0,
            seed,
        }
    }
}

/// The workload generator.
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    params: WorkloadParams,
}

impl WorkloadGenerator {
    /// Creates a generator with the given parameters.
    pub fn new(params: WorkloadParams) -> Self {
        Self { params }
    }

    /// Parameters in force.
    pub fn params(&self) -> &WorkloadParams {
        &self.params
    }

    /// Generates the whole workload.
    pub fn generate(&self) -> Vec<Query> {
        (0..self.params.queries)
            .map(|q| self.generate_query(QueryId::new(q as u32)))
            .collect()
    }

    /// Generates one query of the workload.
    pub fn generate_query(&self, id: QueryId) -> Query {
        let mut rng = stream_rng(self.params.seed, 0x5157_0000 + id.0 as u64);
        let n = self.params.relations_per_query.max(1);

        // 1. Relations: pick a size class uniformly, then a cardinality
        //    uniformly inside the (scaled) class range.
        let relations: Vec<RelationDef> = (0..n)
            .map(|i| {
                let class = *SizeClass::all()
                    .choose(&mut rng)
                    .expect("non-empty classes");
                let (lo, hi) = class.range();
                let lo = ((lo as f64) * self.params.scale).max(16.0) as u64;
                let hi = ((hi as f64) * self.params.scale).max(32.0) as u64;
                let cardinality = uniform_u64(&mut rng, lo, hi);
                RelationDef::new(
                    RelationId::new((id.0 * 1_000) + i as u32),
                    format!("Q{}_R{}", id.0, i),
                    cardinality,
                    class,
                )
                .with_skew(self.params.skew)
            })
            .collect();

        // 2. Predicate graph: a random tree built by attaching each new
        //    relation to a uniformly chosen, already connected relation. This
        //    yields acyclic connected graphs with varied shapes (chains,
        //    stars and everything in between).
        let mut graph = PredicateGraph::new(relations.iter().map(|r| r.id).collect());
        for i in 1..n {
            let attach_to = rng.random_range(0..i);
            let a = relations[attach_to].id;
            let b = relations[i].id;
            let max_card = relations[attach_to]
                .cardinality
                .max(relations[i].cardinality) as f64;
            // 3. Selectivity in [0.5, 1.5] / max(|R|, |S|).
            let selectivity = uniform_f64(&mut rng, 0.5, 1.5) / max_card;
            graph.add_edge(a, b, selectivity);
        }

        Query {
            id,
            relations,
            graph,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_has_requested_shape() {
        let params = WorkloadParams {
            queries: 5,
            relations_per_query: 12,
            ..WorkloadParams::default()
        };
        let queries = WorkloadGenerator::new(params).generate();
        assert_eq!(queries.len(), 5);
        for q in &queries {
            assert_eq!(q.relations.len(), 12);
            assert_eq!(q.join_count(), 11, "acyclic connected graph has n-1 edges");
            assert!(q.graph.is_connected());
            assert!(q.graph.is_acyclic());
            assert!(q.base_tuples() > 0);
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let params = WorkloadParams::tiny(3, 6, 42);
        let a = WorkloadGenerator::new(params).generate();
        let b = WorkloadGenerator::new(params).generate();
        assert_eq!(a, b);
        let c = WorkloadGenerator::new(WorkloadParams::tiny(3, 6, 43)).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn cardinalities_respect_scaled_class_ranges() {
        let params = WorkloadParams {
            queries: 10,
            relations_per_query: 8,
            scale: 0.01,
            ..WorkloadParams::default()
        };
        let queries = WorkloadGenerator::new(params).generate();
        for q in &queries {
            for r in &q.relations {
                let (lo, hi) = r.size_class.range();
                let lo = ((lo as f64) * 0.01).max(16.0) as u64;
                let hi = ((hi as f64) * 0.01).max(32.0) as u64;
                assert!(
                    (lo..=hi).contains(&r.cardinality),
                    "{} not in [{lo},{hi}] for {:?}",
                    r.cardinality,
                    r.size_class
                );
            }
        }
    }

    #[test]
    fn selectivities_keep_join_results_commensurate() {
        let queries = WorkloadGenerator::new(WorkloadParams::default()).generate();
        for q in &queries {
            for e in q.graph.edges() {
                let left = q.relation(e.left).unwrap().cardinality as f64;
                let right = q.relation(e.right).unwrap().cardinality as f64;
                let result = e.selectivity * left * right;
                let smaller_bound = 0.5 * left.min(right);
                let larger_bound = 1.5 * left.max(right);
                assert!(
                    result >= smaller_bound * 0.99 && result <= larger_bound * 1.01,
                    "join result {result} out of band [{smaller_bound}, {larger_bound}]"
                );
            }
        }
    }

    #[test]
    fn relation_lookup_by_id() {
        let q = WorkloadGenerator::new(WorkloadParams::tiny(1, 4, 7))
            .generate()
            .remove(0);
        let first = q.relations[0].id;
        assert!(q.relation(first).is_some());
        assert!(q.relation(RelationId::new(999_999)).is_none());
    }

    #[test]
    fn queries_with_skew_record_it_on_relations() {
        let params = WorkloadParams {
            skew: 0.8,
            queries: 1,
            ..WorkloadParams::default()
        };
        let q = WorkloadGenerator::new(params).generate().remove(0);
        assert!(q.relations.iter().all(|r| r.attribute_skew == 0.8));
    }
}
