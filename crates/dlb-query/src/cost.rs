//! Cost model.
//!
//! The cost model serves three purposes:
//!
//! 1. the optimizer ranks candidate bushy trees by total intermediate result
//!    size and estimated work,
//! 2. the **Fixed Processing** strategy allocates processors to the operators
//!    of a pipeline chain proportionally to their estimated complexity
//!    "including CPU and I/O costs" (§5.2.1) — with an optional error rate
//!    `r` that distorts cardinality estimates, reproducing Figure 7,
//! 3. the workload generator constrains the sequential response time of the
//!    retained plans.

use crate::jointree::JoinTree;
use dlb_common::config::{CostConstants, CpuParams, DiskParams};
use dlb_common::rng::distort;
use dlb_common::Duration;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Estimated work of one operator, split into CPU instructions and I/O time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OperatorCost {
    /// CPU instructions.
    pub instructions: u64,
    /// I/O service time (zero for operators that never touch disk).
    pub io: Duration,
}

impl OperatorCost {
    /// Converts the estimate into wall-clock time on one processor, assuming
    /// no CPU/I/O overlap (a conservative sequential estimate).
    pub fn sequential_time(&self, cpu: &CpuParams) -> Duration {
        cpu.instructions(self.instructions) + self.io
    }

    /// Adds two estimates.
    pub fn plus(&self, other: OperatorCost) -> OperatorCost {
        OperatorCost {
            instructions: self.instructions + other.instructions,
            io: self.io + other.io,
        }
    }
}

/// The cost model: per-tuple constants plus hardware parameters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Per-tuple cost constants.
    pub costs: CostConstants,
    /// Disk parameters (for scan I/O estimates).
    pub disk: DiskParams,
    /// CPU parameters (for time conversion).
    pub cpu: CpuParams,
}

impl CostModel {
    /// Creates a cost model from explicit parameters.
    pub fn new(costs: CostConstants, disk: DiskParams, cpu: CpuParams) -> Self {
        Self { costs, disk, cpu }
    }

    /// Cost of scanning `tuples` base tuples (read pages from disk, extract
    /// and filter tuples).
    ///
    /// Scans are sequential: the disk pays latency and seek once to position
    /// on the partition fragment and then streams pages at the transfer rate,
    /// with one asynchronous-I/O initiation per read-ahead window.
    pub fn scan_cost(&self, tuples: u64) -> OperatorCost {
        let pages = self.costs.pages_for_tuples(tuples);
        let io_requests = pages.div_ceil(self.disk.io_cache_pages as u64).max(1);
        OperatorCost {
            instructions: tuples * self.costs.scan_tuple_instr
                + io_requests * self.disk.async_io_init_instr,
            io: self.disk.access_time(pages),
        }
    }

    /// Cost of building a hash table over `tuples` input tuples.
    pub fn build_cost(&self, tuples: u64) -> OperatorCost {
        OperatorCost {
            instructions: tuples * self.costs.build_tuple_instr,
            io: Duration::ZERO,
        }
    }

    /// Cost of probing `input_tuples` against a hash table, producing
    /// `output_tuples` result tuples.
    pub fn probe_cost(&self, input_tuples: u64, output_tuples: u64) -> OperatorCost {
        OperatorCost {
            instructions: input_tuples * self.costs.probe_tuple_instr
                + output_tuples * self.costs.result_tuple_instr,
            io: Duration::ZERO,
        }
    }

    /// Size in bytes of the hash table built over `tuples` tuples (used by
    /// the global load-balancing benefit/overhead trade-off and the memory
    /// admission check).
    pub fn hash_table_bytes(&self, tuples: u64) -> u64 {
        // Tuple payload plus roughly 16 bytes of bucket/pointer overhead per
        // entry.
        tuples * (self.costs.tuple_bytes + 16)
    }

    /// Estimated sequential execution time of a whole join tree on one
    /// processor: every base relation is scanned, every join builds on its
    /// build input and probes with its probe input.
    pub fn sequential_time(&self, tree: &JoinTree) -> Duration {
        self.tree_cost(tree).sequential_time(&self.cpu)
    }

    /// Total estimated work of a join tree.
    pub fn tree_cost(&self, tree: &JoinTree) -> OperatorCost {
        match tree {
            JoinTree::Leaf { cardinality, .. } => self.scan_cost(*cardinality),
            JoinTree::Join {
                build,
                probe,
                cardinality,
            } => {
                let children = self.tree_cost(build).plus(self.tree_cost(probe));
                children
                    .plus(self.build_cost(build.cardinality()))
                    .plus(self.probe_cost(probe.cardinality(), *cardinality))
            }
        }
    }

    /// Applies a relative estimation error to a cardinality: the returned
    /// value is `cardinality * (1 + U[-rate, +rate])`, at least 1. This is the
    /// distortion used by Figure 7 to study the impact of cost-model errors on
    /// Fixed Processing.
    pub fn distorted_cardinality<R: Rng>(&self, rng: &mut R, cardinality: u64, rate: f64) -> u64 {
        distort(rng, cardinality as f64, rate).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_common::rng::rng_from_seed;
    use dlb_common::RelationId;

    #[test]
    fn scan_cost_includes_io_and_cpu() {
        let m = CostModel::default();
        let c = m.scan_cost(8_100); // 100 pages
        assert!(c.instructions >= 8_100 * m.costs.scan_tuple_instr);
        assert!(c.io > Duration::ZERO);
        let t = c.sequential_time(&m.cpu);
        assert!(t > c.io);
    }

    #[test]
    fn build_and_probe_costs_scale_linearly() {
        let m = CostModel::default();
        assert_eq!(
            m.build_cost(2_000).instructions,
            2 * m.build_cost(1_000).instructions
        );
        let p = m.probe_cost(1_000, 500);
        assert_eq!(
            p.instructions,
            1_000 * m.costs.probe_tuple_instr + 500 * m.costs.result_tuple_instr
        );
        assert_eq!(p.io, Duration::ZERO);
    }

    #[test]
    fn hash_table_bytes_exceed_raw_tuple_bytes() {
        let m = CostModel::default();
        assert!(m.hash_table_bytes(1_000) > m.costs.bytes_for_tuples(1_000));
    }

    #[test]
    fn tree_cost_adds_up_all_operators() {
        let m = CostModel::default();
        let tree = JoinTree::join(
            JoinTree::leaf(RelationId::new(0), 10_000),
            JoinTree::leaf(RelationId::new(1), 20_000),
            1.0 / 20_000.0,
        );
        let cost = m.tree_cost(&tree);
        let scans = m.scan_cost(10_000).plus(m.scan_cost(20_000));
        assert!(cost.instructions > scans.instructions);
        let expected_join = m
            .build_cost(10_000)
            .plus(m.probe_cost(20_000, tree.cardinality()));
        assert_eq!(
            cost.instructions,
            scans.instructions + expected_join.instructions
        );
        assert!(m.sequential_time(&tree) > Duration::ZERO);
    }

    #[test]
    fn distortion_respects_rate_band() {
        let m = CostModel::default();
        let mut rng = rng_from_seed(5);
        for _ in 0..200 {
            let d = m.distorted_cardinality(&mut rng, 10_000, 0.3);
            assert!((7_000..=13_000).contains(&d), "distorted {d}");
        }
        assert_eq!(m.distorted_cardinality(&mut rng, 10_000, 0.0), 10_000);
    }
}
