//! Operator trees: macro-expansion of join trees.
//!
//! Following §2.2, a join tree is macro-expanded into an *operator tree*
//! whose nodes are the atomic operators (scan, build, probe) and whose edges
//! describe dataflow. Two kinds of edges are distinguished:
//!
//! * **pipelinable** edges — tuples are consumed one at a time (scan → build,
//!   scan → probe, probe → build, probe → probe),
//! * **blocking** edges — the producer's output must be fully materialized
//!   before the consumer starts; the only blocking edge of a hash join is
//!   build → probe (the hash table).
//!
//! The operator tree is then decomposed into *maximum pipeline chains*
//! (§2.2): maximal sequences of operators linked by pipelinable edges. Each
//! chain starts at a scan and ends either at a build or at the root probe.

use crate::jointree::JoinTree;
use dlb_common::{OperatorId, PipelineChainId, RelationId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The kind of an atomic operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperatorKind {
    /// Scan of a base relation.
    Scan {
        /// The scanned relation.
        relation: RelationId,
    },
    /// Build phase of hash join number `join`.
    Build {
        /// Join index within the query (0-based, in expansion order).
        join: u32,
    },
    /// Probe phase of hash join number `join`.
    Probe {
        /// Join index within the query (0-based, in expansion order).
        join: u32,
    },
}

impl OperatorKind {
    /// True for scan operators.
    pub fn is_scan(self) -> bool {
        matches!(self, OperatorKind::Scan { .. })
    }

    /// True for build operators.
    pub fn is_build(self) -> bool {
        matches!(self, OperatorKind::Build { .. })
    }

    /// True for probe operators.
    pub fn is_probe(self) -> bool {
        matches!(self, OperatorKind::Probe { .. })
    }

    /// Short label used in reports ("scan", "build", "probe").
    pub fn label(self) -> &'static str {
        match self {
            OperatorKind::Scan { .. } => "scan",
            OperatorKind::Build { .. } => "build",
            OperatorKind::Probe { .. } => "probe",
        }
    }
}

/// Kind of a dataflow edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Tuples may be consumed one at a time as they are produced.
    Pipelinable,
    /// The whole output must be produced before consumption starts.
    Blocking,
}

/// One atomic operator of a parallel execution plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Operator {
    /// Identifier (index into the operator tree).
    pub id: OperatorId,
    /// What the operator does.
    pub kind: OperatorKind,
    /// The operator consuming this operator's pipelined output, if any. Build
    /// operators have no pipelined consumer (their output is the hash table,
    /// connected to the probe through `hash_source`), and the root probe has
    /// none either.
    pub consumer: Option<OperatorId>,
    /// For probe operators, the build operator whose hash table is probed.
    pub hash_source: Option<OperatorId>,
    /// True (estimated-by-the-optimizer) number of input tuples.
    pub input_tuples: u64,
    /// True number of output tuples (for a build, the hash-table
    /// cardinality; for a probe, the join result cardinality).
    pub output_tuples: u64,
    /// Pipeline chain this operator belongs to.
    pub chain: PipelineChainId,
}

impl Operator {
    /// The kind of the edge from this operator to its consumer.
    pub fn output_edge(&self) -> EdgeKind {
        if self.kind.is_build() {
            EdgeKind::Blocking
        } else {
            EdgeKind::Pipelinable
        }
    }
}

/// A maximum pipeline chain: operators executed in pipeline, listed from the
/// leading scan to the terminating build (or root probe).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineChain {
    /// Identifier of the chain.
    pub id: PipelineChainId,
    /// Operators of the chain, in dataflow order.
    pub operators: Vec<OperatorId>,
}

impl PipelineChain {
    /// First operator of the chain (always a scan).
    pub fn first(&self) -> OperatorId {
        self.operators[0]
    }

    /// Last operator of the chain (a build, or the root probe).
    pub fn last(&self) -> OperatorId {
        *self.operators.last().expect("chains are never empty")
    }

    /// Number of operators in the chain.
    pub fn len(&self) -> usize {
        self.operators.len()
    }

    /// True when the chain has no operators (never happens for valid plans).
    pub fn is_empty(&self) -> bool {
        self.operators.is_empty()
    }
}

/// The operator tree produced by macro-expanding a join tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatorTree {
    operators: Vec<Operator>,
    chains: Vec<PipelineChain>,
    root: OperatorId,
}

impl OperatorTree {
    /// Macro-expands a join tree into scan/build/probe operators, assigns
    /// pipeline chains and returns the resulting tree.
    pub fn from_join_tree(tree: &JoinTree) -> Self {
        let mut builder = TreeBuilder::default();
        let root = builder.expand(tree);
        let mut optree = OperatorTree {
            operators: builder.operators,
            chains: Vec::new(),
            root,
        };
        optree.assign_chains();
        optree
    }

    /// All operators, indexed by their id.
    pub fn operators(&self) -> &[Operator] {
        &self.operators
    }

    /// The operator with identifier `id`.
    pub fn operator(&self, id: OperatorId) -> &Operator {
        &self.operators[id.index()]
    }

    /// The root operator (the probe producing the final query result, or the
    /// single scan of a one-relation query).
    pub fn root(&self) -> OperatorId {
        self.root
    }

    /// The pipeline chains, in construction order.
    pub fn chains(&self) -> &[PipelineChain] {
        &self.chains
    }

    /// The chain containing operator `id`.
    pub fn chain_of(&self, id: OperatorId) -> &PipelineChain {
        &self.chains[self.operator(id).chain.index()]
    }

    /// Operators producing pipelined input for `id` (its children across
    /// pipelinable edges).
    pub fn pipelined_producers(&self, id: OperatorId) -> Vec<OperatorId> {
        self.operators
            .iter()
            .filter(|op| op.consumer == Some(id))
            .map(|op| op.id)
            .collect()
    }

    /// Number of scan operators.
    pub fn scan_count(&self) -> usize {
        self.operators.iter().filter(|o| o.kind.is_scan()).count()
    }

    /// Number of joins (build/probe pairs).
    pub fn join_count(&self) -> usize {
        self.operators.iter().filter(|o| o.kind.is_build()).count()
    }

    /// Total number of result tuples produced by the root operator.
    pub fn result_tuples(&self) -> u64 {
        self.operator(self.root).output_tuples
    }

    fn assign_chains(&mut self) {
        // A chain starts at each scan and follows pipelinable consumer edges.
        let scans: Vec<OperatorId> = self
            .operators
            .iter()
            .filter(|o| o.kind.is_scan())
            .map(|o| o.id)
            .collect();
        let mut chains = Vec::new();
        for (chain_idx, scan) in scans.into_iter().enumerate() {
            let chain_id = PipelineChainId::from(chain_idx);
            let mut members = vec![scan];
            let mut current = scan;
            loop {
                let op = &self.operators[current.index()];
                // Stop after a build (blocking output) or at the root.
                if op.output_edge() == EdgeKind::Blocking {
                    break;
                }
                match op.consumer {
                    Some(next) => {
                        members.push(next);
                        current = next;
                    }
                    None => break,
                }
            }
            for &m in &members {
                self.operators[m.index()].chain = chain_id;
            }
            chains.push(PipelineChain {
                id: chain_id,
                operators: members,
            });
        }
        self.chains = chains;
    }

    /// Map from join index to its (build, probe) operator pair.
    pub fn joins(&self) -> BTreeMap<u32, (OperatorId, OperatorId)> {
        let mut map: BTreeMap<u32, (Option<OperatorId>, Option<OperatorId>)> = BTreeMap::new();
        for op in &self.operators {
            match op.kind {
                OperatorKind::Build { join } => map.entry(join).or_default().0 = Some(op.id),
                OperatorKind::Probe { join } => map.entry(join).or_default().1 = Some(op.id),
                OperatorKind::Scan { .. } => {}
            }
        }
        map.into_iter()
            .map(|(j, (b, p))| (j, (b.expect("build exists"), p.expect("probe exists"))))
            .collect()
    }
}

#[derive(Default)]
struct TreeBuilder {
    operators: Vec<Operator>,
    next_join: u32,
}

impl TreeBuilder {
    fn push(&mut self, kind: OperatorKind, input: u64, output: u64) -> OperatorId {
        let id = OperatorId::from(self.operators.len());
        self.operators.push(Operator {
            id,
            kind,
            consumer: None,
            hash_source: None,
            input_tuples: input,
            output_tuples: output,
            chain: PipelineChainId::new(0),
        });
        id
    }

    /// Expands a subtree, returning the operator producing its output.
    fn expand(&mut self, tree: &JoinTree) -> OperatorId {
        match tree {
            JoinTree::Leaf {
                relation,
                cardinality,
            } => self.push(
                OperatorKind::Scan {
                    relation: *relation,
                },
                *cardinality,
                *cardinality,
            ),
            JoinTree::Join {
                build,
                probe,
                cardinality,
            } => {
                let build_input = self.expand(build);
                let probe_input = self.expand(probe);
                let join = self.next_join;
                self.next_join += 1;

                let build_op = self.push(
                    OperatorKind::Build { join },
                    build.cardinality(),
                    build.cardinality(),
                );
                let probe_op = self.push(
                    OperatorKind::Probe { join },
                    probe.cardinality(),
                    *cardinality,
                );
                self.operators[build_input.index()].consumer = Some(build_op);
                self.operators[probe_input.index()].consumer = Some(probe_op);
                self.operators[probe_op.index()].hash_source = Some(build_op);
                probe_op
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> RelationId {
        RelationId::new(i)
    }

    /// The bushy tree of the paper's Figure 2: (R ⋈ S) ⋈ (T ⋈ U).
    fn figure2_tree() -> JoinTree {
        let rs = JoinTree::join(
            JoinTree::leaf(r(0), 1_000),
            JoinTree::leaf(r(1), 2_000),
            1.0 / 2_000.0,
        );
        let tu = JoinTree::join(
            JoinTree::leaf(r(2), 1_500),
            JoinTree::leaf(r(3), 3_000),
            1.0 / 3_000.0,
        );
        JoinTree::join(rs, tu, 1.0 / 1_500.0)
    }

    #[test]
    fn expansion_creates_three_operators_per_join_plus_scans() {
        let ot = OperatorTree::from_join_tree(&figure2_tree());
        assert_eq!(ot.scan_count(), 4);
        assert_eq!(ot.join_count(), 3);
        assert_eq!(ot.operators().len(), 4 + 2 * 3);
        assert!(ot.operator(ot.root()).kind.is_probe());
    }

    #[test]
    fn every_probe_has_a_hash_source_and_builds_have_none() {
        let ot = OperatorTree::from_join_tree(&figure2_tree());
        for op in ot.operators() {
            match op.kind {
                OperatorKind::Probe { .. } => assert!(op.hash_source.is_some()),
                _ => assert!(op.hash_source.is_none()),
            }
        }
        let joins = ot.joins();
        assert_eq!(joins.len(), 3);
        for (build, probe) in joins.values() {
            assert!(ot.operator(*build).kind.is_build());
            assert!(ot.operator(*probe).kind.is_probe());
            assert_eq!(ot.operator(*probe).hash_source, Some(*build));
        }
    }

    #[test]
    fn chains_match_figure2_decomposition() {
        // Expected chains: {scanR, build}, {scanS, probe1, build-top},
        // {scanT, build2}, {scanU, probe2, probe-top}.
        let ot = OperatorTree::from_join_tree(&figure2_tree());
        assert_eq!(ot.chains().len(), 4);
        let lens: Vec<usize> = ot.chains().iter().map(|c| c.len()).collect();
        let mut sorted = lens.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![2, 2, 3, 3]);
        // Each chain starts with a scan.
        for chain in ot.chains() {
            assert!(ot.operator(chain.first()).kind.is_scan());
            assert!(!chain.is_empty());
            // Intermediate operators of a chain are probes; the last is a
            // build or the root probe.
            for &op in &chain.operators[1..chain.len() - 1] {
                assert!(ot.operator(op).kind.is_probe());
            }
            let last = ot.operator(chain.last());
            assert!(last.kind.is_build() || last.id == ot.root());
        }
        // Every operator belongs to exactly one chain.
        let mut seen = std::collections::HashSet::new();
        for chain in ot.chains() {
            for &op in &chain.operators {
                assert!(seen.insert(op), "operator in two chains");
                assert_eq!(ot.operator(op).chain, chain.id);
                assert_eq!(ot.chain_of(op).id, chain.id);
            }
        }
        assert_eq!(seen.len(), ot.operators().len());
    }

    #[test]
    fn blocking_edges_only_out_of_builds() {
        let ot = OperatorTree::from_join_tree(&figure2_tree());
        for op in ot.operators() {
            match op.kind {
                OperatorKind::Build { .. } => {
                    assert_eq!(op.output_edge(), EdgeKind::Blocking);
                    assert!(op.consumer.is_none());
                }
                _ => assert_eq!(op.output_edge(), EdgeKind::Pipelinable),
            }
        }
    }

    #[test]
    fn pipelined_producers_are_symmetric_with_consumers() {
        let ot = OperatorTree::from_join_tree(&figure2_tree());
        for op in ot.operators() {
            if let Some(consumer) = op.consumer {
                assert!(ot.pipelined_producers(consumer).contains(&op.id));
            }
        }
    }

    #[test]
    fn single_relation_tree_expands_to_one_scan() {
        let ot = OperatorTree::from_join_tree(&JoinTree::leaf(r(9), 500));
        assert_eq!(ot.operators().len(), 1);
        assert_eq!(ot.scan_count(), 1);
        assert_eq!(ot.chains().len(), 1);
        assert_eq!(ot.result_tuples(), 500);
        assert_eq!(ot.root(), OperatorId::new(0));
    }

    #[test]
    fn cardinalities_propagate_from_join_tree() {
        let tree = figure2_tree();
        let ot = OperatorTree::from_join_tree(&tree);
        assert_eq!(ot.result_tuples(), tree.cardinality());
        // Build input equals the build-side subtree cardinality.
        for op in ot.operators() {
            if op.kind.is_build() {
                assert_eq!(op.input_tuples, op.output_tuples);
            }
        }
    }
}
