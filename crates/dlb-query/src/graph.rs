//! Predicate connection graphs.
//!
//! A multi-join query is described by its *predicate connection graph*: one
//! vertex per base relation and one edge per join predicate, labelled with the
//! join selectivity factor. The paper's workload generator only produces
//! acyclic connected graphs (i.e. trees), because "most multi-join queries in
//! practice tend to have simple join predicates", but the structure here
//! accepts arbitrary connected graphs.

use dlb_common::RelationId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One join predicate between two relations, with its selectivity factor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JoinEdge {
    /// One endpoint.
    pub left: RelationId,
    /// The other endpoint.
    pub right: RelationId,
    /// Join selectivity factor: `|L ⋈ R| = selectivity * |L| * |R|`.
    pub selectivity: f64,
}

impl JoinEdge {
    /// True when this edge connects `a` and `b` (in either order).
    pub fn connects(&self, a: RelationId, b: RelationId) -> bool {
        (self.left == a && self.right == b) || (self.left == b && self.right == a)
    }

    /// The endpoint that is not `r`, if `r` is an endpoint.
    pub fn other(&self, r: RelationId) -> Option<RelationId> {
        if self.left == r {
            Some(self.right)
        } else if self.right == r {
            Some(self.left)
        } else {
            None
        }
    }
}

/// The predicate connection graph of one query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredicateGraph {
    relations: Vec<RelationId>,
    edges: Vec<JoinEdge>,
}

impl PredicateGraph {
    /// Creates a graph over the given relations with no edges yet.
    pub fn new(relations: Vec<RelationId>) -> Self {
        Self {
            relations,
            edges: Vec::new(),
        }
    }

    /// Adds a join edge. Panics if either endpoint is not a vertex or the
    /// selectivity is not positive and finite.
    pub fn add_edge(&mut self, left: RelationId, right: RelationId, selectivity: f64) {
        assert!(
            self.relations.contains(&left) && self.relations.contains(&right),
            "both endpoints must be relations of the graph"
        );
        assert!(
            left != right,
            "self-joins are expressed with distinct relation ids"
        );
        assert!(
            selectivity.is_finite() && selectivity > 0.0,
            "selectivity must be positive"
        );
        self.edges.push(JoinEdge {
            left,
            right,
            selectivity,
        });
    }

    /// Relations (vertices) of the graph.
    pub fn relations(&self) -> &[RelationId] {
        &self.relations
    }

    /// Join edges of the graph.
    pub fn edges(&self) -> &[JoinEdge] {
        &self.edges
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True when the graph has no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Relations adjacent to `r`.
    pub fn neighbours(&self, r: RelationId) -> Vec<RelationId> {
        self.edges.iter().filter_map(|e| e.other(r)).collect()
    }

    /// Selectivity of the edge between `a` and `b`, if any.
    pub fn selectivity_between(&self, a: RelationId, b: RelationId) -> Option<f64> {
        self.edges
            .iter()
            .find(|e| e.connects(a, b))
            .map(|e| e.selectivity)
    }

    /// Combined selectivity of all predicate edges linking a relation of set
    /// `left` with a relation of set `right` (product of the individual edge
    /// selectivities). Returns `None` when no edge crosses the two sets,
    /// i.e. joining them would be a Cartesian product.
    pub fn crossing_selectivity(
        &self,
        left: &BTreeSet<RelationId>,
        right: &BTreeSet<RelationId>,
    ) -> Option<f64> {
        let mut product = 1.0;
        let mut found = false;
        for e in &self.edges {
            let crosses = (left.contains(&e.left) && right.contains(&e.right))
                || (left.contains(&e.right) && right.contains(&e.left));
            if crosses {
                product *= e.selectivity;
                found = true;
            }
        }
        found.then_some(product)
    }

    /// True when the graph is connected (every relation reachable from the
    /// first one through join edges).
    pub fn is_connected(&self) -> bool {
        if self.relations.is_empty() {
            return true;
        }
        let mut adjacency: BTreeMap<RelationId, Vec<RelationId>> = BTreeMap::new();
        for e in &self.edges {
            adjacency.entry(e.left).or_default().push(e.right);
            adjacency.entry(e.right).or_default().push(e.left);
        }
        let mut visited = BTreeSet::new();
        let mut queue = VecDeque::new();
        queue.push_back(self.relations[0]);
        visited.insert(self.relations[0]);
        while let Some(r) = queue.pop_front() {
            if let Some(next) = adjacency.get(&r) {
                for &n in next {
                    if visited.insert(n) {
                        queue.push_back(n);
                    }
                }
            }
        }
        visited.len() == self.relations.len()
    }

    /// True when the graph is acyclic (edge count is vertex count minus one
    /// for a connected graph; more generally checked per connected component).
    pub fn is_acyclic(&self) -> bool {
        // Union-find over relations; a cycle appears when an edge joins two
        // vertices already in the same set.
        let mut parent: BTreeMap<RelationId, RelationId> =
            self.relations.iter().map(|&r| (r, r)).collect();
        fn find(parent: &mut BTreeMap<RelationId, RelationId>, r: RelationId) -> RelationId {
            let p = parent[&r];
            if p == r {
                r
            } else {
                let root = find(parent, p);
                parent.insert(r, root);
                root
            }
        }
        for e in &self.edges {
            let a = find(&mut parent, e.left);
            let b = find(&mut parent, e.right);
            if a == b {
                return false;
            }
            parent.insert(a, b);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> RelationId {
        RelationId::new(i)
    }

    fn chain_graph(n: u32) -> PredicateGraph {
        let mut g = PredicateGraph::new((0..n).map(r).collect());
        for i in 1..n {
            g.add_edge(r(i - 1), r(i), 0.001);
        }
        g
    }

    #[test]
    fn edge_helpers() {
        let e = JoinEdge {
            left: r(0),
            right: r(1),
            selectivity: 0.5,
        };
        assert!(e.connects(r(0), r(1)));
        assert!(e.connects(r(1), r(0)));
        assert!(!e.connects(r(0), r(2)));
        assert_eq!(e.other(r(0)), Some(r(1)));
        assert_eq!(e.other(r(2)), None);
    }

    #[test]
    fn chain_is_connected_and_acyclic() {
        let g = chain_graph(5);
        assert_eq!(g.len(), 5);
        assert!(g.is_connected());
        assert!(g.is_acyclic());
        assert_eq!(g.neighbours(r(2)), vec![r(1), r(3)]);
        assert_eq!(g.selectivity_between(r(0), r(1)), Some(0.001));
        assert_eq!(g.selectivity_between(r(0), r(2)), None);
    }

    #[test]
    fn disconnected_graph_detected() {
        let mut g = PredicateGraph::new(vec![r(0), r(1), r(2)]);
        g.add_edge(r(0), r(1), 0.1);
        assert!(!g.is_connected());
        assert!(g.is_acyclic());
    }

    #[test]
    fn cycle_detected() {
        let mut g = chain_graph(3);
        g.add_edge(r(2), r(0), 0.1);
        assert!(g.is_connected());
        assert!(!g.is_acyclic());
    }

    #[test]
    fn crossing_selectivity_multiplies_edges() {
        let mut g = PredicateGraph::new(vec![r(0), r(1), r(2), r(3)]);
        g.add_edge(r(0), r(2), 0.1);
        g.add_edge(r(1), r(3), 0.2);
        g.add_edge(r(0), r(1), 0.5);
        let left: BTreeSet<_> = [r(0), r(1)].into_iter().collect();
        let right: BTreeSet<_> = [r(2), r(3)].into_iter().collect();
        let sel = g.crossing_selectivity(&left, &right).unwrap();
        assert!((sel - 0.1 * 0.2).abs() < 1e-12);
        // The (0,1) edge is internal to `left` and must not contribute.
        let only_three: BTreeSet<_> = [r(3)].into_iter().collect();
        let sel2 = g.crossing_selectivity(&left, &only_three).unwrap();
        assert!((sel2 - 0.2).abs() < 1e-12);
        let disjoint: BTreeSet<_> = [r(2)].into_iter().collect();
        let none = g.crossing_selectivity(&only_three, &disjoint);
        assert!(none.is_none());
    }

    #[test]
    #[should_panic(expected = "selectivity must be positive")]
    fn bad_selectivity_rejected() {
        let mut g = PredicateGraph::new(vec![r(0), r(1)]);
        g.add_edge(r(0), r(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "self-joins")]
    fn self_edge_rejected() {
        let mut g = PredicateGraph::new(vec![r(0)]);
        g.add_edge(r(0), r(0), 0.5);
    }

    #[test]
    fn empty_graph_is_connected_and_acyclic() {
        let g = PredicateGraph::new(vec![]);
        assert!(g.is_connected());
        assert!(g.is_acyclic());
        assert!(g.is_empty());
    }
}
