//! # dlb-bench
//!
//! Benchmark harnesses that regenerate every table and figure of the paper's
//! evaluation (§5), plus Criterion micro-benchmarks of the engine internals.
//!
//! Each figure has a dedicated binary (see `src/bin/`); `all_figures` runs
//! them all in sequence. The harness defaults to a reduced workload so that a
//! full run completes in minutes on a laptop; set the environment variables
//! below (or pass `--paper`) to approach the paper's scale:
//!
//! | variable | default | paper |
//! |---|---|---|
//! | `HIERDB_QUERIES` | 6 | 20 |
//! | `HIERDB_RELATIONS` | 10 | 12 |
//! | `HIERDB_SCALE` | 0.1 | 1.0 |
//! | `HIERDB_SEED` | 0xD1B1996 | — |
//! | `HIERDB_THREADS` | all cores | — |
//!
//! ## Parallel execution
//!
//! Every plan execution is an independent seeded simulation, so the harness
//! is parallel at two levels: [`Experiment::run`] fans the plans of a
//! workload out across worker threads, and [`par_points`] computes the
//! sweep points of a figure (skew values, processor counts, error rates)
//! concurrently. Results are gathered in deterministic order, so figure
//! output is **bit-identical** whatever the thread count. `HIERDB_THREADS`
//! pins the worker count (e.g. `HIERDB_THREADS=1` forces sequential
//! execution for baseline timings).
//!
//! The `bench_report` binary times the fixed reduced workload sequentially
//! and in parallel for each strategy and prints machine-readable JSON — the
//! perf-tracking record for the engine across PRs:
//!
//! ```text
//! cargo run --release -p dlb-bench --bin bench_report
//! ```
//!
//! The measured series are printed as aligned text tables; `EXPERIMENTS.md`
//! at the workspace root records a reference run next to the paper's numbers.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use dlb_core::{Experiment, HierarchicalSystem, WorkloadParams};

/// Configuration of the figure harness, read from the environment.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// Number of generated queries.
    pub queries: usize,
    /// Relations per query.
    pub relations: usize,
    /// Cardinality scale factor (1.0 = paper scale).
    pub scale: f64,
    /// Workload seed.
    pub seed: u64,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        Self {
            queries: 6,
            relations: 10,
            scale: 0.1,
            seed: 0xD1B_1996,
        }
    }
}

impl HarnessConfig {
    /// Reads the configuration from the environment and the command line
    /// (`--paper` selects the paper-scale workload). Also applies the
    /// `HIERDB_THREADS` worker-count knob.
    pub fn from_env() -> Self {
        dlb_core::init_threads_from_env();
        let mut cfg = Self::default();
        if std::env::args().any(|a| a == "--paper") {
            cfg.queries = 20;
            cfg.relations = 12;
            cfg.scale = 1.0;
        }
        if let Some(v) = read_env_usize("HIERDB_QUERIES") {
            cfg.queries = v;
        }
        if let Some(v) = read_env_usize("HIERDB_RELATIONS") {
            cfg.relations = v;
        }
        if let Some(v) = read_env_f64("HIERDB_SCALE") {
            cfg.scale = v;
        }
        if let Some(v) = read_env_u64("HIERDB_SEED") {
            cfg.seed = v;
        }
        cfg
    }

    /// The workload parameters corresponding to this configuration.
    pub fn workload(&self) -> WorkloadParams {
        WorkloadParams {
            queries: self.queries,
            relations_per_query: self.relations,
            scale: self.scale,
            skew: 0.0,
            seed: self.seed,
        }
    }

    /// Builds an experiment (workload compiled for `system`).
    pub fn experiment(&self, system: HierarchicalSystem) -> Experiment {
        Experiment::builder()
            .system(system)
            .workload(self.workload())
            .build()
            .expect("workload generation cannot fail with valid parameters")
    }

    /// Prints the harness banner for a figure binary.
    pub fn banner(&self, figure: &str, description: &str) {
        println!("================================================================");
        println!("{figure} — {description}");
        println!(
            "workload: {} queries x {} relations, scale {}, seed {:#x}",
            self.queries, self.relations, self.scale, self.seed
        );
        println!("================================================================");
    }
}

fn read_env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.parse().ok()
}

fn read_env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.parse().ok()
}

fn read_env_f64(name: &str) -> Option<f64> {
    std::env::var(name).ok()?.parse().ok()
}

/// Computes the sweep points of a figure concurrently, returning results in
/// point order so that printing stays deterministic. Each point typically
/// calls [`Experiment::run`], which itself fans plans out; the two levels
/// claim threads from one shared worker budget (once the point level has
/// claimed it, inner plan fan-outs degrade to inline execution), so nesting
/// approximately respects `HIERDB_THREADS` instead of multiplying it.
pub fn par_points<T, U, F>(points: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    use rayon::prelude::*;
    points.par_iter().map(f).collect()
}

/// Formats a ratio column entry.
pub fn fmt_ratio(v: f64) -> String {
    if v.is_nan() {
        "   n/a".to_string()
    } else {
        format!("{v:6.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_configuration_is_reduced_scale() {
        let c = HarnessConfig::default();
        assert!(c.scale < 1.0);
        assert!(c.queries < 20);
        let w = c.workload();
        assert_eq!(w.queries, c.queries);
        assert_eq!(w.relations_per_query, c.relations);
    }

    #[test]
    fn experiment_builds_from_config() {
        let c = HarnessConfig {
            queries: 1,
            relations: 3,
            scale: 0.002,
            seed: 1,
        };
        let exp = c.experiment(HierarchicalSystem::shared_memory(2));
        assert!(!exp.workload().is_empty());
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(fmt_ratio(f64::NAN), "   n/a");
        assert_eq!(fmt_ratio(1.25), " 1.250");
    }

    #[test]
    fn par_points_preserves_point_order() {
        let points: Vec<u32> = (0..32).collect();
        let out = par_points(&points, |p| p * 3);
        assert_eq!(out, points.iter().map(|p| p * 3).collect::<Vec<_>>());
    }
}
