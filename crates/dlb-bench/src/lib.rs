//! # dlb-bench
//!
//! Benchmark harnesses that regenerate every table and figure of the paper's
//! evaluation (§5), plus Criterion micro-benchmarks of the engine internals.
//!
//! Every figure is a [`dlb_core::scenario::ScenarioSpec`] bundled in the
//! scenario registry; the per-figure binaries (see `src/bin/`) are thin
//! lookups that run their spec and print its text rendering, `all_figures`
//! runs the whole registry in sequence, and the `scenario` binary runs any
//! registered name — or a user-authored JSON spec file — with text, JSON or
//! CSV output:
//!
//! ```text
//! cargo run --release -p dlb-bench --bin scenario -- --list
//! cargo run --release -p dlb-bench --bin scenario -- fig9
//! cargo run --release -p dlb-bench --bin scenario -- --spec my_sweep.json --format csv
//! ```
//!
//! The harness defaults to a reduced workload so that a full run completes
//! in minutes on a laptop; set the environment variables below (or pass
//! `--paper`) to approach the paper's scale:
//!
//! | variable | default | paper |
//! |---|---|---|
//! | `HIERDB_QUERIES` | 6 | 20 |
//! | `HIERDB_RELATIONS` | 10 | 12 |
//! | `HIERDB_SCALE` | 0.1 | 1.0 |
//! | `HIERDB_SEED` | 0xD1B1996 | — |
//! | `HIERDB_THREADS` | all cores | — |
//!
//! ## Parallel execution
//!
//! Every plan execution is an independent seeded simulation, so the harness
//! is parallel at two levels: [`Experiment::run`] fans the plans of a
//! workload out across worker threads, and the scenario driver computes the
//! sweep points of a figure (skew values, processor counts, error rates)
//! concurrently, all sharing one workspace-level run cache. Results are
//! gathered in deterministic order, so figure output is **bit-identical**
//! whatever the thread count. `HIERDB_THREADS` pins the worker count (e.g.
//! `HIERDB_THREADS=1` forces sequential execution for baseline timings).
//!
//! The `bench_report` binary times a registered scenario's base
//! configuration sequentially and in parallel for each strategy and prints
//! machine-readable JSON — the perf-tracking record for the engine across
//! PRs:
//!
//! ```text
//! cargo run --release -p dlb-bench --bin bench_report            # paper-base
//! cargo run --release -p dlb-bench --bin bench_report -- fig10
//! ```
//!
//! `EXPERIMENTS.md` at the workspace root records a reference run next to
//! the paper's numbers, and documents the JSON spec-file format.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod gate;

use dlb_core::scenario::{self, ScenarioSpec, WorkloadSpec};
use dlb_core::{
    CpuParams, DiskParams, Experiment, HierarchicalSystem, NetworkParams, WorkloadParams,
};

pub use dlb_core::scenario::fmt_ratio;

/// Configuration of the figure harness, read from the environment.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// Number of generated queries.
    pub queries: usize,
    /// Relations per query.
    pub relations: usize,
    /// Cardinality scale factor (1.0 = paper scale).
    pub scale: f64,
    /// Workload seed.
    pub seed: u64,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        // The harness defaults ARE the bundled specs' default workload; keep
        // the two in sync by construction.
        match WorkloadSpec::default() {
            WorkloadSpec::Generated {
                queries,
                relations,
                scale,
                seed,
            } => Self {
                queries,
                relations,
                scale,
                seed,
            },
            other => unreachable!("default workload spec is generated, got {other:?}"),
        }
    }
}

impl HarnessConfig {
    /// Reads the configuration from the environment and the command line
    /// (`--paper` selects the paper-scale workload). Also applies the
    /// `HIERDB_THREADS` worker-count knob.
    pub fn from_env() -> Self {
        dlb_core::init_threads_from_env();
        let mut cfg = Self::default();
        if std::env::args().any(|a| a == "--paper") {
            cfg.queries = 20;
            cfg.relations = 12;
            cfg.scale = 1.0;
        }
        if let Some(v) = read_env_usize("HIERDB_QUERIES") {
            cfg.queries = v;
        }
        if let Some(v) = read_env_usize("HIERDB_RELATIONS") {
            cfg.relations = v;
        }
        if let Some(v) = read_env_f64("HIERDB_SCALE") {
            cfg.scale = v;
        }
        if let Some(v) = read_env_u64("HIERDB_SEED") {
            cfg.seed = v;
        }
        cfg
    }

    /// Applies this workload configuration to a scenario spec (chain
    /// workloads are left untouched).
    pub fn apply(&self, spec: ScenarioSpec) -> ScenarioSpec {
        spec.with_generated_workload(self.queries, self.relations, self.scale, self.seed)
    }

    /// The workload parameters corresponding to this configuration.
    pub fn workload(&self) -> WorkloadParams {
        WorkloadParams {
            queries: self.queries,
            relations_per_query: self.relations,
            scale: self.scale,
            skew: 0.0,
            seed: self.seed,
        }
    }

    /// Builds an experiment (workload compiled for `system`).
    pub fn experiment(&self, system: HierarchicalSystem) -> Experiment {
        Experiment::builder()
            .system(system)
            .workload(self.workload())
            .build()
            .expect("workload generation cannot fail with valid parameters")
    }

    /// Prints the harness banner for a figure binary.
    pub fn banner(&self, figure: &str, description: &str) {
        println!("================================================================");
        println!("{figure} — {description}");
        println!(
            "workload: {} queries x {} relations, scale {}, seed {:#x}",
            self.queries, self.relations, self.scale, self.seed
        );
        println!("================================================================");
    }
}

/// Runs the registered scenario `name` under this harness workload and
/// returns its text rendering. Panics on unknown names — the figure binaries
/// only pass bundled names.
pub fn figure_output(name: &str, cfg: &HarnessConfig) -> String {
    let spec = scenario::find(name)
        .unwrap_or_else(|| panic!("scenario {name:?} is not in the bundled registry"));
    let report = scenario::run_scenario(&cfg.apply(spec))
        .unwrap_or_else(|e| panic!("scenario {name} failed: {e}"));
    scenario::render_text(&report)
}

/// Explicit workload overrides: only the knobs the user actually set
/// (`--paper` or `HIERDB_*`), so that user-authored spec files keep their
/// own workload unless overridden.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkloadOverrides {
    /// `HIERDB_QUERIES` / `--paper`.
    pub queries: Option<usize>,
    /// `HIERDB_RELATIONS` / `--paper`.
    pub relations: Option<usize>,
    /// `HIERDB_SCALE` / `--paper`.
    pub scale: Option<f64>,
    /// `HIERDB_SEED`.
    pub seed: Option<u64>,
}

impl WorkloadOverrides {
    /// Collects the overrides present on the command line and in the
    /// environment.
    pub fn from_env() -> Self {
        let paper = std::env::args().any(|a| a == "--paper");
        Self {
            queries: read_env_usize("HIERDB_QUERIES").or(paper.then_some(20)),
            relations: read_env_usize("HIERDB_RELATIONS").or(paper.then_some(12)),
            scale: read_env_f64("HIERDB_SCALE").or(paper.then_some(1.0)),
            seed: read_env_u64("HIERDB_SEED"),
        }
    }

    /// Applies the set overrides onto a spec's generated workload — plain,
    /// the inner workload of a mix, or the template pool of an open arrival
    /// stream (chain workloads and unset knobs are untouched; for open
    /// workloads the queries knob sizes the template pool, not the stream).
    pub fn apply(&self, spec: ScenarioSpec) -> ScenarioSpec {
        let (queries, relations, scale, seed) = match &spec.workload {
            WorkloadSpec::Generated {
                queries,
                relations,
                scale,
                seed,
            } => (*queries, *relations, *scale, *seed),
            WorkloadSpec::Mix(mix) => (mix.queries, mix.relations, mix.scale, mix.seed),
            WorkloadSpec::Open(open) => (open.templates, open.relations, open.scale, open.seed),
            WorkloadSpec::Chain { .. } => return spec,
        };
        spec.with_generated_workload(
            self.queries.unwrap_or(queries),
            self.relations.unwrap_or(relations),
            self.scale.unwrap_or(scale),
            self.seed.unwrap_or(seed),
        )
    }
}

/// Reprints the simulation-parameter tables of §5.1.1 from the live
/// defaults, so any drift between code and paper is immediately visible.
pub fn params_table() -> String {
    use std::fmt::Write as _;
    let cpu = CpuParams::default();
    let net = NetworkParams::default();
    let disk = DiskParams::default();
    let mut out = String::new();
    let w = &mut out;

    let _ = writeln!(
        w,
        "== §5.1.1 simulation parameters (library defaults vs paper) ==\n"
    );

    let _ = writeln!(w, "Processor");
    let _ = writeln!(
        w,
        "  speed                                {} MIPS   (paper: 40 MIPS)",
        cpu.mips
    );

    let _ = writeln!(w, "\nNetwork parameters");
    let _ = writeln!(
        w,
        "  bandwidth                            {}   (paper: infinite)",
        match net.bandwidth_bytes_per_sec {
            None => "infinite".to_string(),
            Some(b) => format!("{b} B/s"),
        }
    );
    let _ = writeln!(
        w,
        "  end-to-end transmission delay        {}   (paper: 0.5 ms)",
        net.end_to_end_delay
    );
    let _ = writeln!(
        w,
        "  CPU cost for sending 8 KB            {} instr   (paper: 10000 instr)",
        net.send_instr_per_page
    );
    let _ = writeln!(
        w,
        "  CPU cost for receiving 8 KB          {} instr   (paper: 10000 instr)",
        net.recv_instr_per_page
    );

    let _ = writeln!(w, "\nDisk parameters");
    let _ = writeln!(
        w,
        "  number of disks                      {} per processor   (paper: 1 per processor)",
        disk.disks_per_processor
    );
    let _ = writeln!(
        w,
        "  disk latency                         {}   (paper: 17 ms)",
        disk.latency
    );
    let _ = writeln!(
        w,
        "  seek time                            {}   (paper: 5 ms)",
        disk.seek_time
    );
    let _ = writeln!(
        w,
        "  transfer rate                        {:.1} MB/s   (paper: 6 MB/s)",
        disk.transfer_rate_bytes_per_sec / (1024.0 * 1024.0)
    );
    let _ = writeln!(
        w,
        "  CPU cost for asynchronous I/O init   {} instr   (paper: 5000 instr)",
        disk.async_io_init_instr
    );
    let _ = writeln!(
        w,
        "  I/O cache size                       {} pages   (paper: 8 pages)",
        disk.io_cache_pages
    );
    out
}

fn read_env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.parse().ok()
}

fn read_env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.parse().ok()
}

fn read_env_f64(name: &str) -> Option<f64> {
    std::env::var(name).ok()?.parse().ok()
}

/// Computes the sweep points of a figure concurrently, returning results in
/// point order so that printing stays deterministic. Each point typically
/// calls [`Experiment::run`], which itself fans plans out; the two levels
/// claim threads from one shared worker budget (once the point level has
/// claimed it, inner plan fan-outs degrade to inline execution), so nesting
/// approximately respects `HIERDB_THREADS` instead of multiplying it.
pub fn par_points<T, U, F>(points: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    use rayon::prelude::*;
    points.par_iter().map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_configuration_is_reduced_scale() {
        let c = HarnessConfig::default();
        assert!(c.scale < 1.0);
        assert!(c.queries < 20);
        let w = c.workload();
        assert_eq!(w.queries, c.queries);
        assert_eq!(w.relations_per_query, c.relations);
    }

    #[test]
    fn experiment_builds_from_config() {
        let c = HarnessConfig {
            queries: 1,
            relations: 3,
            scale: 0.002,
            seed: 1,
        };
        let exp = c.experiment(HierarchicalSystem::shared_memory(2));
        assert!(!exp.workload().is_empty());
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(fmt_ratio(f64::NAN), "   n/a");
        assert_eq!(fmt_ratio(1.25), " 1.250");
    }

    #[test]
    fn par_points_preserves_point_order() {
        let points: Vec<u32> = (0..32).collect();
        let out = par_points(&points, |p| p * 3);
        assert_eq!(out, points.iter().map(|p| p * 3).collect::<Vec<_>>());
    }

    #[test]
    fn harness_config_applies_to_generated_specs_only() {
        let cfg = HarnessConfig {
            queries: 2,
            relations: 5,
            scale: 0.01,
            seed: 9,
        };
        let fig6 = cfg.apply(dlb_core::scenario::find("fig6").unwrap());
        assert_eq!(
            fig6.workload,
            WorkloadSpec::Generated {
                queries: 2,
                relations: 5,
                scale: 0.01,
                seed: 9
            }
        );
        let chain = cfg.apply(dlb_core::scenario::find("chain53").unwrap());
        assert!(matches!(chain.workload, WorkloadSpec::Chain { .. }));
    }

    #[test]
    fn params_table_reflects_the_live_defaults() {
        let t = params_table();
        assert!(t.contains("40 MIPS"));
        assert!(t.contains("infinite"));
        assert!(t.contains("8 pages"));
    }

    #[test]
    fn overrides_apply_only_what_is_set() {
        let o = WorkloadOverrides {
            scale: Some(0.5),
            ..WorkloadOverrides::default()
        };
        let spec = o.apply(dlb_core::scenario::find("fig6").unwrap());
        match spec.workload {
            WorkloadSpec::Generated { queries, scale, .. } => {
                assert_eq!(scale, 0.5);
                assert_eq!(queries, HarnessConfig::default().queries);
            }
            other => panic!("unexpected workload {other:?}"),
        }
    }
}
