//! The perf-regression gate over `bench_report` JSON documents.
//!
//! `bench_report` emits one JSON record per run (scenario, workload, and
//! per-strategy sequential/parallel wall-clock timings, the sequential ones
//! as `{mean, median, min, ci95, samples, outliers}` summaries over several
//! samples). CI keeps a checked-in baseline (`ci/bench-baseline.json`,
//! an **array** of such reports, one per gated scenario) and fails a change
//! when the **sequential** wall clock of the same scenario regresses by
//! more than [`DEFAULT_MAX_REGRESSION`] (10%) *beyond what the measurement
//! noise explains*: the comparison is CI-aware, so a run only fails when
//! the current confidence interval sits clear of the (threshold-scaled)
//! baseline interval — see [`GateOutcome::passed`]. The sequential run is
//! the gated quantity because it is the engine's own cost, independent of
//! runner core counts; the threshold is overridable through
//! [`MAX_REGRESSION_ENV`] (`HIERDB_BENCH_MAX_REGRESSION`) for noisy shared
//! runners — e.g. `HIERDB_BENCH_MAX_REGRESSION=1.0` tolerates a 2× slowdown,
//! and `-1` scales the allowed ceiling to zero so any run fails (used to
//! self-test the gate).
//!
//! Old-style reports whose `sequential_ms` is a plain number still parse
//! (with a zero-width confidence interval), so a stale baseline degrades to
//! the strict mean-vs-mean comparison instead of breaking the gate.

use dlb_common::json::Json;
use dlb_common::{DlbError, Result};

/// Default tolerated fractional regression of the summed sequential
/// wall-clock (0.10 = fail beyond 10% slower than the baseline, after
/// accounting for both runs' confidence intervals).
pub const DEFAULT_MAX_REGRESSION: f64 = 0.10;

/// Smallest summed baseline wall-clock (in milliseconds) the gate accepts.
/// The verdict is a *ratio* against the baseline: a zero or near-zero
/// denominator turns any measurable current run into an astronomic (or
/// infinite) "regression" and an unconditional gate failure, so such
/// baselines are rejected as degenerate instead of being compared.
pub const MIN_BASELINE_SEQUENTIAL_MS: f64 = 1e-3;

/// Environment variable overriding [`DEFAULT_MAX_REGRESSION`].
pub const MAX_REGRESSION_ENV: &str = "HIERDB_BENCH_MAX_REGRESSION";

/// One strategy's timing in both reports.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyDelta {
    /// Strategy label ("DP", "FP", "SP").
    pub strategy: String,
    /// Baseline mean sequential wall-clock, in milliseconds.
    pub baseline_ms: f64,
    /// Baseline 95% CI half-width, in milliseconds (0 for old-style
    /// plain-number reports).
    pub baseline_ci_ms: f64,
    /// Current mean sequential wall-clock, in milliseconds.
    pub current_ms: f64,
    /// Current 95% CI half-width, in milliseconds.
    pub current_ci_ms: f64,
}

/// The gate's verdict on one current-vs-baseline comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct GateOutcome {
    /// The compared scenario.
    pub scenario: String,
    /// Summed mean sequential wall-clock of the baseline, in milliseconds.
    pub baseline_sequential_ms: f64,
    /// Combined 95% CI half-width of the baseline sum, in milliseconds
    /// (per-strategy half-widths added in quadrature).
    pub baseline_ci95_ms: f64,
    /// Summed mean sequential wall-clock of the current run, in
    /// milliseconds.
    pub current_sequential_ms: f64,
    /// Combined 95% CI half-width of the current sum, in milliseconds.
    pub current_ci95_ms: f64,
    /// Fractional change of the summed mean sequential wall-clock (+0.30 =
    /// 30% slower than the baseline, negative = faster).
    pub regression: f64,
    /// The tolerated fractional regression this outcome was judged against.
    pub max_regression: f64,
    /// Per-strategy detail, in report order.
    pub per_strategy: Vec<StrategyDelta>,
}

impl GateOutcome {
    /// Whether the current run stays within the tolerated regression.
    ///
    /// CI-overlap rule: the run fails only when the *lower* edge of the
    /// current confidence interval sits above the threshold-scaled *upper*
    /// edge of the baseline interval —
    /// `current − ci > (baseline + ci) · (1 + max_regression)`. A mean
    /// drift the intervals can explain is measurement noise, not a
    /// regression; this keeps the default threshold tight (10%) without
    /// flaking on noisy runners. Old plain-number reports have zero-width
    /// intervals and degrade to a strict mean comparison.
    pub fn passed(&self) -> bool {
        self.current_sequential_ms - self.current_ci95_ms
            <= (self.baseline_sequential_ms + self.baseline_ci95_ms) * (1.0 + self.max_regression)
    }

    /// A one-paragraph human summary (printed to stderr by `bench_report`).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "bench gate [{}]: sequential {:.3} ± {:.3} ms vs baseline {:.3} ± {:.3} ms \
             ({:+.1}%, limit {:+.1}% beyond CI overlap) — {}\n",
            self.scenario,
            self.current_sequential_ms,
            self.current_ci95_ms,
            self.baseline_sequential_ms,
            self.baseline_ci95_ms,
            self.regression * 100.0,
            self.max_regression * 100.0,
            if self.passed() { "ok" } else { "REGRESSION" },
        );
        for d in &self.per_strategy {
            let _ = writeln!(
                out,
                "  {:<3} {:.3} ± {:.3} ms (baseline {:.3} ± {:.3} ms)",
                d.strategy, d.current_ms, d.current_ci_ms, d.baseline_ms, d.baseline_ci_ms
            );
        }
        out
    }
}

/// One strategy's parsed sequential timing: mean and 95% CI half-width.
#[derive(Debug, Clone, PartialEq)]
struct Timing {
    strategy: String,
    mean_ms: f64,
    ci95_ms: f64,
}

/// Extracts `(scenario, timings)` from one bench_report JSON document.
///
/// `sequential_ms` is either the current summary object
/// (`{"mean": .., "ci95": .., ..}`) or, in pre-summary reports, a plain
/// number — parsed with a zero-width confidence interval.
fn sequential_timings(doc: &Json, what: &str) -> Result<(String, Vec<Timing>)> {
    let err = |msg: String| DlbError::Parse(format!("{what}: {msg}"));
    let scenario = doc
        .get("scenario")
        .and_then(Json::as_str)
        .ok_or_else(|| err("missing \"scenario\" string".into()))?
        .to_string();
    let results = doc
        .get("results")
        .and_then(Json::as_array)
        .ok_or_else(|| err("missing \"results\" array".into()))?;
    let mut timings = Vec::with_capacity(results.len());
    for r in results {
        let strategy = r
            .get("strategy")
            .and_then(Json::as_str)
            .ok_or_else(|| err("result without a \"strategy\"".into()))?
            .to_string();
        let seq = r
            .get("sequential_ms")
            .ok_or_else(|| err(format!("result {strategy} without \"sequential_ms\"")))?;
        let (mean_ms, ci95_ms) = if let Some(ms) = seq.as_f64() {
            (ms, 0.0)
        } else {
            let mean = seq
                .get("mean")
                .and_then(Json::as_f64)
                .ok_or_else(|| err(format!("result {strategy} without a \"mean\" timing")))?;
            let ci = seq.get("ci95").and_then(Json::as_f64).unwrap_or(0.0);
            (mean, ci)
        };
        if !(mean_ms.is_finite() && mean_ms >= 0.0 && ci95_ms.is_finite() && ci95_ms >= 0.0) {
            return Err(err(format!(
                "result {strategy} has invalid timing {mean_ms} ± {ci95_ms}"
            )));
        }
        timings.push(Timing {
            strategy,
            mean_ms,
            ci95_ms,
        });
    }
    if timings.is_empty() {
        return Err(err("empty \"results\" array".into()));
    }
    Ok((scenario, timings))
}

/// Resolves the baseline document for `scenario` from a baseline file that
/// holds either a single report or an **array** of reports (one per gated
/// scenario, the `ci/bench-baseline.json` layout).
fn baseline_timings(doc: &Json, scenario: &str) -> Result<Vec<Timing>> {
    if let Some(reports) = doc.as_array() {
        for report in reports {
            let (base_scenario, timings) = sequential_timings(report, "baseline entry")?;
            if base_scenario == scenario {
                return Ok(timings);
            }
        }
        return Err(DlbError::InvalidConfig(format!(
            "baseline array has no entry for scenario {scenario:?}; \
             regenerate the baseline for this scenario"
        )));
    }
    let (base_scenario, timings) = sequential_timings(doc, "baseline")?;
    if base_scenario != scenario {
        return Err(DlbError::InvalidConfig(format!(
            "bench gate compares {scenario:?} against a baseline of {base_scenario:?}; \
             regenerate the baseline for this scenario"
        )));
    }
    Ok(timings)
}

/// Compares a current `bench_report` JSON document against a baseline and
/// judges the summed sequential wall-clock against `max_regression` with
/// the CI-overlap rule (see [`GateOutcome::passed`]).
///
/// The baseline may be a single report of the same scenario or an array of
/// reports containing one; baselines captured on a different machine class
/// are expected to be compared with a loosened [`MAX_REGRESSION_ENV`] knob.
pub fn compare(current: &str, baseline: &str, max_regression: f64) -> Result<GateOutcome> {
    let current_doc = Json::parse(current)?;
    let baseline_doc = Json::parse(baseline)?;
    let (scenario, current_timings) = sequential_timings(&current_doc, "current report")?;
    let baseline_timings = baseline_timings(&baseline_doc, &scenario)?;
    // The summed wall-clock is only comparable over the same strategy set:
    // a dropped strategy would halve the current sum (masking regressions),
    // an added one would read as a false regression.
    let strategy_set = |timings: &[Timing]| {
        let mut labels: Vec<String> = timings.iter().map(|t| t.strategy.clone()).collect();
        labels.sort();
        labels
    };
    let (current_set, baseline_set) = (
        strategy_set(&current_timings),
        strategy_set(&baseline_timings),
    );
    if current_set != baseline_set {
        return Err(DlbError::InvalidConfig(format!(
            "bench gate strategy sets differ: current {current_set:?} vs baseline \
             {baseline_set:?}; regenerate the baseline for the new strategy set"
        )));
    }
    let current_sequential_ms: f64 = current_timings.iter().map(|t| t.mean_ms).sum();
    let baseline_sequential_ms: f64 = baseline_timings.iter().map(|t| t.mean_ms).sum();
    // Independent per-strategy measurements: CI half-widths of a sum add in
    // quadrature.
    let quadrature = |timings: &[Timing]| {
        timings
            .iter()
            .map(|t| t.ci95_ms * t.ci95_ms)
            .sum::<f64>()
            .sqrt()
    };
    let current_ci95_ms = quadrature(&current_timings);
    let baseline_ci95_ms = quadrature(&baseline_timings);
    if baseline_sequential_ms < MIN_BASELINE_SEQUENTIAL_MS {
        return Err(DlbError::InvalidConfig(format!(
            "degenerate baseline: summed sequential wall-clock is \
             {baseline_sequential_ms} ms (< {MIN_BASELINE_SEQUENTIAL_MS} ms), so any \
             regression ratio against it is meaningless; re-capture the baseline with \
             `bench_report --write`"
        )));
    }
    let per_strategy = current_timings
        .iter()
        .map(|t| {
            let base = baseline_timings.iter().find(|b| b.strategy == t.strategy);
            StrategyDelta {
                strategy: t.strategy.clone(),
                baseline_ms: base.map_or(f64::NAN, |b| b.mean_ms),
                baseline_ci_ms: base.map_or(f64::NAN, |b| b.ci95_ms),
                current_ms: t.mean_ms,
                current_ci_ms: t.ci95_ms,
            }
        })
        .collect();
    Ok(GateOutcome {
        scenario,
        baseline_sequential_ms,
        baseline_ci95_ms,
        current_sequential_ms,
        current_ci95_ms,
        regression: current_sequential_ms / baseline_sequential_ms - 1.0,
        max_regression,
        per_strategy,
    })
}

/// Resolves the tolerated regression from an optional
/// [`MAX_REGRESSION_ENV`] value: unset keeps the default, an unparseable
/// value warns (returning the default) rather than silently gating at a
/// surprise threshold.
pub fn max_regression_from(value: Option<&str>) -> f64 {
    match value {
        None => DEFAULT_MAX_REGRESSION,
        Some(v) => match v.parse::<f64>() {
            Ok(f) if f.is_finite() => f,
            _ => {
                eprintln!(
                    "warning: {MAX_REGRESSION_ENV}={v:?} is not a number; \
                     using the default {DEFAULT_MAX_REGRESSION}"
                );
                DEFAULT_MAX_REGRESSION
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A new-schema report: `sequential_ms` as a summary object.
    fn report(scenario: &str, timings: &[(&str, f64, f64)]) -> String {
        let results: Vec<String> = timings
            .iter()
            .map(|(s, mean, ci)| {
                format!(
                    "{{\"strategy\": \"{s}\", \"plans\": 12, \"sequential_ms\": \
                     {{\"mean\": {mean}, \"median\": {mean}, \"min\": {mean}, \
                     \"ci95\": {ci}, \"samples\": 5, \"outliers\": 0}}, \
                     \"parallel_ms\": {mean}, \"speedup\": 1.0, \"identical\": true}}"
                )
            })
            .collect();
        format!(
            "{{\"benchmark\": \"bench_report\", \"scenario\": \"{scenario}\", \
             \"results\": [{}]}}",
            results.join(", ")
        )
    }

    /// An old-schema report: `sequential_ms` as a plain number.
    fn flat_report(scenario: &str, timings: &[(&str, f64)]) -> String {
        let results: Vec<String> = timings
            .iter()
            .map(|(s, ms)| {
                format!(
                    "{{\"strategy\": \"{s}\", \"plans\": 12, \"sequential_ms\": {ms}, \
                     \"parallel_ms\": {ms}, \"speedup\": 1.0, \"identical\": true}}"
                )
            })
            .collect();
        format!(
            "{{\"benchmark\": \"bench_report\", \"scenario\": \"{scenario}\", \
             \"results\": [{}]}}",
            results.join(", ")
        )
    }

    #[test]
    fn equal_runs_pass_at_the_default_threshold() {
        let doc = report("paper-base", &[("DP", 100.0, 2.0), ("FP", 150.0, 3.0)]);
        let outcome = compare(&doc, &doc, DEFAULT_MAX_REGRESSION).unwrap();
        assert!(outcome.passed());
        assert_eq!(outcome.regression, 0.0);
        assert_eq!(outcome.scenario, "paper-base");
        assert_eq!(outcome.per_strategy.len(), 2);
        // CI half-widths add in quadrature: sqrt(2² + 3²).
        assert!((outcome.current_ci95_ms - 13.0f64.sqrt()).abs() < 1e-12);
        assert!(outcome.summary().contains("ok"));
    }

    #[test]
    fn regressions_beyond_the_threshold_fail() {
        let base = report("paper-base", &[("DP", 100.0, 0.0), ("FP", 100.0, 0.0)]);
        // 30% slower overall with tight intervals: beyond the default 10%.
        let slow = report("paper-base", &[("DP", 130.0, 0.5), ("FP", 130.0, 0.5)]);
        let outcome = compare(&slow, &base, DEFAULT_MAX_REGRESSION).unwrap();
        assert!(!outcome.passed());
        assert!((outcome.regression - 0.30).abs() < 1e-9);
        assert!(outcome.summary().contains("REGRESSION"));
        // A loosened runner knob tolerates it.
        assert!(compare(&slow, &base, 1.0).unwrap().passed());
        // Improvements always pass.
        let fast = report("paper-base", &[("DP", 50.0, 0.5), ("FP", 60.0, 0.5)]);
        assert!(compare(&fast, &base, DEFAULT_MAX_REGRESSION)
            .unwrap()
            .passed());
        // A −1 threshold scales the allowed ceiling to zero, failing any
        // positive run (the gate self-test knob).
        assert!(!compare(&base, &base, -1.0).unwrap().passed());
    }

    #[test]
    fn overlapping_confidence_intervals_absorb_noisy_drift() {
        // 15% mean drift, but both intervals are ±10 ms: the current lower
        // edge (105) sits below the scaled baseline upper edge (110 × 1.1 =
        // 121), so this is noise, not a regression.
        let base = report("paper-base", &[("DP", 100.0, 10.0)]);
        let noisy = report("paper-base", &[("DP", 115.0, 10.0)]);
        assert!(compare(&noisy, &base, DEFAULT_MAX_REGRESSION)
            .unwrap()
            .passed());
        // A genuinely slower run clears the ceiling even with its interval:
        // lower edge 135 > 121.
        let slow = report("paper-base", &[("DP", 140.0, 5.0)]);
        assert!(!compare(&slow, &base, DEFAULT_MAX_REGRESSION)
            .unwrap()
            .passed());
    }

    #[test]
    fn plain_number_reports_parse_with_zero_width_intervals() {
        // A stale flat-schema baseline degrades to strict mean-vs-mean.
        let old = flat_report("paper-base", &[("DP", 100.0), ("FP", 100.0)]);
        let new_ok = report("paper-base", &[("DP", 104.0, 1.0), ("FP", 104.0, 1.0)]);
        let outcome = compare(&new_ok, &old, DEFAULT_MAX_REGRESSION).unwrap();
        assert_eq!(outcome.baseline_ci95_ms, 0.0);
        assert!(outcome.passed());
        let new_slow = report("paper-base", &[("DP", 130.0, 1.0), ("FP", 130.0, 1.0)]);
        assert!(!compare(&new_slow, &old, DEFAULT_MAX_REGRESSION)
            .unwrap()
            .passed());
    }

    #[test]
    fn baseline_arrays_select_the_matching_scenario() {
        let baseline = format!(
            "[{}, {}, {}]",
            report("paper-base", &[("DP", 100.0, 1.0)]),
            report("mix-cosim", &[("DP", 30.0, 0.5), ("FP", 35.0, 0.5)]),
            report("open-poisson", &[("DP", 7.0, 0.1)]),
        );
        let current = report("mix-cosim", &[("DP", 31.0, 0.5), ("FP", 34.0, 0.5)]);
        let outcome = compare(&current, &baseline, DEFAULT_MAX_REGRESSION).unwrap();
        assert_eq!(outcome.scenario, "mix-cosim");
        assert!((outcome.baseline_sequential_ms - 65.0).abs() < 1e-9);
        assert!(outcome.passed());
        // A scenario absent from the array is an error, not a silent pass.
        let missing = report("fig10", &[("DP", 10.0, 0.1)]);
        assert!(compare(&missing, &baseline, DEFAULT_MAX_REGRESSION).is_err());
    }

    #[test]
    fn mismatched_strategy_sets_error_instead_of_skewing_the_sum() {
        let both = report("paper-base", &[("DP", 100.0, 1.0), ("FP", 100.0, 1.0)]);
        // Dropping a strategy would halve the sum and mask any regression;
        // the gate must refuse to compare instead.
        let dp_only = report("paper-base", &[("DP", 190.0, 1.0)]);
        assert!(compare(&dp_only, &both, DEFAULT_MAX_REGRESSION).is_err());
        assert!(compare(&both, &dp_only, DEFAULT_MAX_REGRESSION).is_err());
        // Same set, different order: fine.
        let reordered = report("paper-base", &[("FP", 100.0, 1.0), ("DP", 100.0, 1.0)]);
        assert!(compare(&reordered, &both, DEFAULT_MAX_REGRESSION)
            .unwrap()
            .passed());
    }

    #[test]
    fn mismatched_scenarios_and_broken_documents_error() {
        let a = report("paper-base", &[("DP", 100.0, 1.0)]);
        let b = report("fig10", &[("DP", 100.0, 1.0)]);
        assert!(compare(&a, &b, DEFAULT_MAX_REGRESSION).is_err());
        assert!(compare("not json", &a, DEFAULT_MAX_REGRESSION).is_err());
        assert!(compare(&a, "{}", DEFAULT_MAX_REGRESSION).is_err());
        let empty = "{\"scenario\": \"paper-base\", \"results\": []}";
        assert!(compare(&a, empty, DEFAULT_MAX_REGRESSION).is_err());
        let zero = report("paper-base", &[("DP", 0.0, 0.0)]);
        assert!(compare(&a, &zero, DEFAULT_MAX_REGRESSION).is_err());
        // A summary object without a mean is broken, not zero.
        let no_mean = "{\"scenario\": \"paper-base\", \"results\": [{\"strategy\": \"DP\", \
                       \"sequential_ms\": {\"ci95\": 1.0}}]}";
        assert!(compare(no_mean, &a, DEFAULT_MAX_REGRESSION).is_err());
    }

    #[test]
    fn degenerate_near_zero_baselines_are_rejected_not_compared() {
        // A near-zero (but strictly positive) baseline would previously pass
        // the `<= 0` guard and judge the current run as an astronomically
        // large regression — an unconditional, meaningless gate failure.
        let current = report("paper-base", &[("DP", 100.0, 1.0)]);
        for degenerate_ms in [0.0, 1e-12, 1e-4] {
            let baseline = report("paper-base", &[("DP", degenerate_ms, 0.0)]);
            let err = compare(&current, &baseline, DEFAULT_MAX_REGRESSION).unwrap_err();
            assert!(
                matches!(err, DlbError::InvalidConfig(ref m) if m.contains("degenerate")),
                "baseline {degenerate_ms} ms: {err}"
            );
        }
        // The smallest accepted baseline still compares (and fails honestly).
        let tiny = report("paper-base", &[("DP", MIN_BASELINE_SEQUENTIAL_MS, 0.0)]);
        let outcome = compare(&current, &tiny, DEFAULT_MAX_REGRESSION).unwrap();
        assert!(!outcome.passed());
        assert!(outcome.regression.is_finite());
    }

    #[test]
    fn threshold_env_parsing_is_forgiving() {
        assert_eq!(max_regression_from(None), DEFAULT_MAX_REGRESSION);
        assert_eq!(max_regression_from(Some("1.5")), 1.5);
        assert_eq!(max_regression_from(Some("-1")), -1.0);
        assert_eq!(max_regression_from(Some("lots")), DEFAULT_MAX_REGRESSION);
        assert_eq!(max_regression_from(Some("NaN")), DEFAULT_MAX_REGRESSION);
    }
}
