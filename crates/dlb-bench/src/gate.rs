//! The perf-regression gate over `bench_report` JSON documents.
//!
//! `bench_report` emits one JSON record per run (scenario, workload, and
//! per-strategy sequential/parallel wall-clock timings). CI keeps a
//! checked-in baseline (`ci/bench-baseline.json`) and fails a change when
//! the **sequential** wall clock of the same scenario regresses by more than
//! [`DEFAULT_MAX_REGRESSION`] (25%). The sequential run is the gated
//! quantity because it is the engine's own cost, independent of runner core
//! counts; the threshold is overridable through
//! [`MAX_REGRESSION_ENV`] (`HIERDB_BENCH_MAX_REGRESSION`) for noisy shared
//! runners — e.g. `HIERDB_BENCH_MAX_REGRESSION=1.0` tolerates a 2× slowdown,
//! and a negative value makes any run fail (used to self-test the gate).

use dlb_common::json::Json;
use dlb_common::{DlbError, Result};

/// Default tolerated fractional regression of the summed sequential
/// wall-clock (0.25 = fail beyond 25% slower than the baseline).
pub const DEFAULT_MAX_REGRESSION: f64 = 0.25;

/// Smallest summed baseline wall-clock (in milliseconds) the gate accepts.
/// The verdict is a *ratio* against the baseline: a zero or near-zero
/// denominator turns any measurable current run into an astronomic (or
/// infinite) "regression" and an unconditional gate failure, so such
/// baselines are rejected as degenerate instead of being compared.
pub const MIN_BASELINE_SEQUENTIAL_MS: f64 = 1e-3;

/// Environment variable overriding [`DEFAULT_MAX_REGRESSION`].
pub const MAX_REGRESSION_ENV: &str = "HIERDB_BENCH_MAX_REGRESSION";

/// One strategy's timing in both reports.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyDelta {
    /// Strategy label ("DP", "FP", "SP").
    pub strategy: String,
    /// Baseline sequential wall-clock, in milliseconds.
    pub baseline_ms: f64,
    /// Current sequential wall-clock, in milliseconds.
    pub current_ms: f64,
}

/// The gate's verdict on one current-vs-baseline comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct GateOutcome {
    /// The compared scenario.
    pub scenario: String,
    /// Summed sequential wall-clock of the baseline, in milliseconds.
    pub baseline_sequential_ms: f64,
    /// Summed sequential wall-clock of the current run, in milliseconds.
    pub current_sequential_ms: f64,
    /// Fractional change of the summed sequential wall-clock (+0.30 = 30%
    /// slower than the baseline, negative = faster).
    pub regression: f64,
    /// The tolerated fractional regression this outcome was judged against.
    pub max_regression: f64,
    /// Per-strategy detail, in report order.
    pub per_strategy: Vec<StrategyDelta>,
}

impl GateOutcome {
    /// Whether the current run stays within the tolerated regression.
    pub fn passed(&self) -> bool {
        self.regression <= self.max_regression
    }

    /// A one-paragraph human summary (printed to stderr by `bench_report`).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "bench gate [{}]: sequential {:.3} ms vs baseline {:.3} ms ({:+.1}%, limit {:+.1}%) — {}\n",
            self.scenario,
            self.current_sequential_ms,
            self.baseline_sequential_ms,
            self.regression * 100.0,
            self.max_regression * 100.0,
            if self.passed() { "ok" } else { "REGRESSION" },
        );
        for d in &self.per_strategy {
            let _ = writeln!(
                out,
                "  {:<3} {:.3} ms (baseline {:.3} ms)",
                d.strategy, d.current_ms, d.baseline_ms
            );
        }
        out
    }
}

/// Extracts `(scenario, [(strategy, sequential_ms)])` from one bench_report
/// JSON document.
fn sequential_timings(doc: &Json, what: &str) -> Result<(String, Vec<(String, f64)>)> {
    let err = |msg: String| DlbError::Parse(format!("{what}: {msg}"));
    let scenario = doc
        .get("scenario")
        .and_then(Json::as_str)
        .ok_or_else(|| err("missing \"scenario\" string".into()))?
        .to_string();
    let results = doc
        .get("results")
        .and_then(Json::as_array)
        .ok_or_else(|| err("missing \"results\" array".into()))?;
    let mut timings = Vec::with_capacity(results.len());
    for r in results {
        let strategy = r
            .get("strategy")
            .and_then(Json::as_str)
            .ok_or_else(|| err("result without a \"strategy\"".into()))?
            .to_string();
        let ms = r
            .get("sequential_ms")
            .and_then(Json::as_f64)
            .ok_or_else(|| err(format!("result {strategy} without \"sequential_ms\"")))?;
        if !(ms.is_finite() && ms >= 0.0) {
            return Err(err(format!("result {strategy} has invalid timing {ms}")));
        }
        timings.push((strategy, ms));
    }
    if timings.is_empty() {
        return Err(err("empty \"results\" array".into()));
    }
    Ok((scenario, timings))
}

/// Compares a current `bench_report` JSON document against a baseline one
/// and judges the summed sequential wall-clock against `max_regression`.
///
/// The two documents must report the same scenario; baselines captured on a
/// different machine class are expected to be compared with a loosened
/// [`MAX_REGRESSION_ENV`] knob.
pub fn compare(current: &str, baseline: &str, max_regression: f64) -> Result<GateOutcome> {
    let current_doc = Json::parse(current)?;
    let baseline_doc = Json::parse(baseline)?;
    let (scenario, current_timings) = sequential_timings(&current_doc, "current report")?;
    let (base_scenario, baseline_timings) = sequential_timings(&baseline_doc, "baseline")?;
    if scenario != base_scenario {
        return Err(DlbError::InvalidConfig(format!(
            "bench gate compares {scenario:?} against a baseline of {base_scenario:?}; \
             regenerate the baseline for this scenario"
        )));
    }
    // The summed wall-clock is only comparable over the same strategy set:
    // a dropped strategy would halve the current sum (masking regressions),
    // an added one would read as a false regression.
    let strategy_set = |timings: &[(String, f64)]| {
        let mut labels: Vec<String> = timings.iter().map(|(s, _)| s.clone()).collect();
        labels.sort();
        labels
    };
    let (current_set, baseline_set) = (
        strategy_set(&current_timings),
        strategy_set(&baseline_timings),
    );
    if current_set != baseline_set {
        return Err(DlbError::InvalidConfig(format!(
            "bench gate strategy sets differ: current {current_set:?} vs baseline \
             {baseline_set:?}; regenerate the baseline for the new strategy set"
        )));
    }
    let current_sequential_ms: f64 = current_timings.iter().map(|(_, ms)| ms).sum();
    let baseline_sequential_ms: f64 = baseline_timings.iter().map(|(_, ms)| ms).sum();
    if baseline_sequential_ms < MIN_BASELINE_SEQUENTIAL_MS {
        return Err(DlbError::InvalidConfig(format!(
            "degenerate baseline: summed sequential wall-clock is \
             {baseline_sequential_ms} ms (< {MIN_BASELINE_SEQUENTIAL_MS} ms), so any \
             regression ratio against it is meaningless; re-capture the baseline with \
             `bench_report --write`"
        )));
    }
    let per_strategy = current_timings
        .iter()
        .map(|(strategy, current_ms)| StrategyDelta {
            strategy: strategy.clone(),
            baseline_ms: baseline_timings
                .iter()
                .find(|(s, _)| s == strategy)
                .map_or(f64::NAN, |(_, ms)| *ms),
            current_ms: *current_ms,
        })
        .collect();
    Ok(GateOutcome {
        scenario,
        baseline_sequential_ms,
        current_sequential_ms,
        regression: current_sequential_ms / baseline_sequential_ms - 1.0,
        max_regression,
        per_strategy,
    })
}

/// Resolves the tolerated regression from an optional
/// [`MAX_REGRESSION_ENV`] value: unset keeps the default, an unparseable
/// value warns (returning the default) rather than silently gating at a
/// surprise threshold.
pub fn max_regression_from(value: Option<&str>) -> f64 {
    match value {
        None => DEFAULT_MAX_REGRESSION,
        Some(v) => match v.parse::<f64>() {
            Ok(f) if f.is_finite() => f,
            _ => {
                eprintln!(
                    "warning: {MAX_REGRESSION_ENV}={v:?} is not a number; \
                     using the default {DEFAULT_MAX_REGRESSION}"
                );
                DEFAULT_MAX_REGRESSION
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(scenario: &str, timings: &[(&str, f64)]) -> String {
        let results: Vec<String> = timings
            .iter()
            .map(|(s, ms)| {
                format!(
                    "{{\"strategy\": \"{s}\", \"plans\": 12, \"sequential_ms\": {ms}, \
                     \"parallel_ms\": {ms}, \"speedup\": 1.0, \"identical\": true}}"
                )
            })
            .collect();
        format!(
            "{{\"benchmark\": \"bench_report\", \"scenario\": \"{scenario}\", \
             \"results\": [{}]}}",
            results.join(", ")
        )
    }

    #[test]
    fn equal_runs_pass_at_the_default_threshold() {
        let doc = report("paper-base", &[("DP", 100.0), ("FP", 150.0)]);
        let outcome = compare(&doc, &doc, DEFAULT_MAX_REGRESSION).unwrap();
        assert!(outcome.passed());
        assert_eq!(outcome.regression, 0.0);
        assert_eq!(outcome.scenario, "paper-base");
        assert_eq!(outcome.per_strategy.len(), 2);
        assert!(outcome.summary().contains("ok"));
    }

    #[test]
    fn regressions_beyond_the_threshold_fail() {
        let base = report("paper-base", &[("DP", 100.0), ("FP", 100.0)]);
        // 30% slower overall: beyond the default 25%.
        let slow = report("paper-base", &[("DP", 130.0), ("FP", 130.0)]);
        let outcome = compare(&slow, &base, DEFAULT_MAX_REGRESSION).unwrap();
        assert!(!outcome.passed());
        assert!((outcome.regression - 0.30).abs() < 1e-9);
        assert!(outcome.summary().contains("REGRESSION"));
        // A loosened runner knob tolerates it.
        assert!(compare(&slow, &base, 1.0).unwrap().passed());
        // Improvements always pass.
        let fast = report("paper-base", &[("DP", 50.0), ("FP", 60.0)]);
        assert!(compare(&fast, &base, DEFAULT_MAX_REGRESSION)
            .unwrap()
            .passed());
        // A negative threshold fails any non-improving run (gate self-test).
        assert!(!compare(&base, &base, -1.0).unwrap().passed());
    }

    #[test]
    fn mismatched_strategy_sets_error_instead_of_skewing_the_sum() {
        let both = report("paper-base", &[("DP", 100.0), ("FP", 100.0)]);
        // Dropping a strategy would halve the sum and mask any regression;
        // the gate must refuse to compare instead.
        let dp_only = report("paper-base", &[("DP", 190.0)]);
        assert!(compare(&dp_only, &both, DEFAULT_MAX_REGRESSION).is_err());
        assert!(compare(&both, &dp_only, DEFAULT_MAX_REGRESSION).is_err());
        // Same set, different order: fine.
        let reordered = report("paper-base", &[("FP", 100.0), ("DP", 100.0)]);
        assert!(compare(&reordered, &both, DEFAULT_MAX_REGRESSION)
            .unwrap()
            .passed());
    }

    #[test]
    fn mismatched_scenarios_and_broken_documents_error() {
        let a = report("paper-base", &[("DP", 100.0)]);
        let b = report("fig10", &[("DP", 100.0)]);
        assert!(compare(&a, &b, DEFAULT_MAX_REGRESSION).is_err());
        assert!(compare("not json", &a, DEFAULT_MAX_REGRESSION).is_err());
        assert!(compare(&a, "{}", DEFAULT_MAX_REGRESSION).is_err());
        let empty = "{\"scenario\": \"paper-base\", \"results\": []}";
        assert!(compare(&a, empty, DEFAULT_MAX_REGRESSION).is_err());
        let zero = report("paper-base", &[("DP", 0.0)]);
        assert!(compare(&a, &zero, DEFAULT_MAX_REGRESSION).is_err());
    }

    #[test]
    fn degenerate_near_zero_baselines_are_rejected_not_compared() {
        // A near-zero (but strictly positive) baseline would previously pass
        // the `<= 0` guard and judge the current run as an astronomically
        // large regression — an unconditional, meaningless gate failure.
        let current = report("paper-base", &[("DP", 100.0)]);
        for degenerate_ms in [0.0, 1e-12, 1e-4] {
            let baseline = report("paper-base", &[("DP", degenerate_ms)]);
            let err = compare(&current, &baseline, DEFAULT_MAX_REGRESSION).unwrap_err();
            assert!(
                matches!(err, DlbError::InvalidConfig(ref m) if m.contains("degenerate")),
                "baseline {degenerate_ms} ms: {err}"
            );
        }
        // The smallest accepted baseline still compares (and fails honestly).
        let tiny = report("paper-base", &[("DP", MIN_BASELINE_SEQUENTIAL_MS)]);
        let outcome = compare(&current, &tiny, DEFAULT_MAX_REGRESSION).unwrap();
        assert!(!outcome.passed());
        assert!(outcome.regression.is_finite());
    }

    #[test]
    fn threshold_env_parsing_is_forgiving() {
        assert_eq!(max_regression_from(None), DEFAULT_MAX_REGRESSION);
        assert_eq!(max_regression_from(Some("1.5")), 1.5);
        assert_eq!(max_regression_from(Some("-1")), -1.0);
        assert_eq!(max_regression_from(Some("lots")), DEFAULT_MAX_REGRESSION);
        assert_eq!(max_regression_from(Some("NaN")), DEFAULT_MAX_REGRESSION);
    }
}
