//! Figure 10 and the §5.3 pipeline-chain experiment — global load balancing
//! in hierarchical configurations.
//!
//! * Default mode (Figure 10): DP versus FP on 4×8, 4×12 and 4×16
//!   configurations with redistribution skew 0.6 (DP is the reference), plus
//!   the load-balancing traffic of each strategy.
//! * `--chain` mode (§5.3 text experiment): a single pipeline chain of five
//!   operators on a 4×8 configuration with skew 0.8; the paper measured
//!   roughly 9 MB of load-balancing traffic for FP versus 2.5 MB for DP.

use dlb_bench::{fmt_ratio, par_points, HarnessConfig};
use dlb_core::{relative_performance, HierarchicalSystem, Strategy, Summary};
use dlb_query::jointree::JoinTree;
use dlb_query::optree::OperatorTree;
use dlb_query::plan::{ChainScheduling, OperatorHomes, ParallelPlan};

fn chain_experiment() {
    println!("== §5.3 experiment: 5-operator pipeline chain, 4x8, skew 0.8 ==");
    // A right-deep join tree over five relations: every hash table is built
    // from a base relation and the probing relation streams through four
    // probes — one maximum pipeline chain of five operators (scan + four
    // probes), exactly the shape of the paper's experiment.
    let system = HierarchicalSystem::hierarchical(4, 8).with_skew(0.8);
    let build_card = 20_000u64;
    let probe_card = 60_000u64;
    let sel = 1.0 / build_card as f64; // keeps every intermediate at ~probe_card
    let mut tree = JoinTree::leaf(dlb_common::RelationId::new(4), probe_card);
    for i in (0..4u32).rev() {
        tree = JoinTree::join(
            JoinTree::leaf(dlb_common::RelationId::new(i), build_card),
            tree,
            sel,
        );
    }
    let optree = OperatorTree::from_join_tree(&tree);
    let homes = OperatorHomes::all_nodes(&optree, system.nodes());
    let plan = ParallelPlan::build(
        dlb_common::QueryId::new(100),
        optree,
        homes,
        ChainScheduling::OneAtATime,
    )
    .expect("chain plan builds");
    let plan = &plan;

    println!(
        "plan: {} operators, {} pipeline chains, longest chain {} operators",
        plan.tree.operators().len(),
        plan.chains().len(),
        plan.chains().iter().map(|c| c.len()).max().unwrap_or(0)
    );

    let dp = system.run(plan, Strategy::Dynamic).expect("DP");
    let fp = system
        .run(plan, Strategy::Fixed { error_rate: 0.0 })
        .expect("FP");
    println!(
        "{:>4}  {:>12}  {:>16}  {:>14}",
        "", "response", "lb data moved", "lb requests"
    );
    for (label, r) in [("DP", &dp), ("FP", &fp)] {
        println!(
            "{label:>4}  {:>12}  {:>13} KB  {:>14}",
            format!("{}", r.response_time),
            r.lb_bytes / 1024,
            r.lb_requests
        );
    }
    if dp.lb_bytes > 0 {
        println!(
            "\nFP ships {:.1}x the data DP ships (paper: ~3.6x — 9 MB vs 2.5 MB).",
            fp.lb_bytes as f64 / dp.lb_bytes as f64
        );
    } else {
        println!(
            "\nDP needed no global load balancing on this run; FP shipped {} KB.",
            fp.lb_bytes / 1024
        );
    }
}

fn figure10(cfg: &HarnessConfig) {
    cfg.banner(
        "Figure 10",
        "relative performance of FP and DP on hierarchical configurations (skew 0.6)",
    );
    let procs = [8u32, 12, 16];
    let rows = par_points(&procs, |&procs| {
        let system = HierarchicalSystem::hierarchical(4, procs).with_skew(0.6);
        let experiment = cfg.experiment(system);
        let dp = experiment.run(Strategy::Dynamic).expect("DP");
        let fp = experiment
            .run(Strategy::Fixed { error_rate: 0.0 })
            .expect("FP");
        let dp_summary = Summary::from_runs(&dp);
        let fp_summary = Summary::from_runs(&fp);
        (
            procs,
            relative_performance(&dp, &dp),
            relative_performance(&fp, &dp),
            dp_summary,
            fp_summary,
        )
    });

    println!(
        "{:>8}  {:>8}  {:>8}  {:>14}  {:>14}  {:>10}  {:>10}",
        "config", "DP", "FP", "DP lb KB", "FP lb KB", "DP idle", "FP idle"
    );
    for (procs, dp, fp, dp_summary, fp_summary) in rows {
        println!(
            "{:>8}  {:>8}  {:>8}  {:>14}  {:>14}  {:>9.1}%  {:>9.1}%",
            format!("4x{procs}"),
            fmt_ratio(dp),
            fmt_ratio(fp),
            dp_summary.total_lb_bytes / 1024,
            fp_summary.total_lb_bytes / 1024,
            dp_summary.mean_idle_fraction * 100.0,
            fp_summary.mean_idle_fraction * 100.0,
        );
    }
    println!(
        "\npaper: FP is 14-39% slower than DP, its load-balancing traffic is 2-4x higher,\n\
         and its processor idle time is significant while DP's is almost null."
    );
}

fn main() {
    let cfg = HarnessConfig::from_env();
    if std::env::args().any(|a| a == "--chain") {
        chain_experiment();
    } else {
        figure10(&cfg);
        println!();
        chain_experiment();
    }
}
