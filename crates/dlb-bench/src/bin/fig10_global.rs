//! Figure 10 and the §5.3 pipeline-chain experiment — global load balancing
//! in hierarchical configurations.
//!
//! * Default mode (Figure 10): DP versus FP on 4×8, 4×12 and 4×16
//!   configurations with redistribution skew 0.6 (DP is the reference), plus
//!   the load-balancing traffic of each strategy — the bundled `fig10`
//!   scenario spec.
//! * `--chain` mode (§5.3 text experiment): a single pipeline chain of five
//!   operators on a 4×8 configuration with skew 0.8 — the bundled `chain53`
//!   spec; the paper measured roughly 9 MB of load-balancing traffic for FP
//!   versus 2.5 MB for DP.

use dlb_bench::{figure_output, HarnessConfig};

fn main() {
    let cfg = HarnessConfig::from_env();
    if std::env::args().any(|a| a == "--chain") {
        print!("{}", figure_output("chain53", &cfg));
    } else {
        print!("{}", figure_output("fig10", &cfg));
        println!();
        print!("{}", figure_output("chain53", &cfg));
    }
}
