//! Machine-readable performance report of the evaluation pipeline.
//!
//! Times the base configuration of a **registered scenario** (default:
//! `paper-base`, the 4×8 hierarchical machine with the reduced harness
//! workload — overridable with the usual `HIERDB_*` variables) per strategy,
//! sequentially and with the parallel plan fan-out, and prints one JSON
//! document to stdout — the perf-tracking record for the engine across PRs:
//!
//! ```text
//! cargo run --release -p dlb-bench --bin bench_report
//! cargo run --release -p dlb-bench --bin bench_report -- fig10
//! HIERDB_THREADS=8 cargo run --release -p dlb-bench --bin bench_report
//! ```
//!
//! The report also cross-checks that the parallel results are bit-identical
//! to the sequential baseline (`"identical": true`); a `false` there is a
//! determinism regression, not a perf number.

use dlb_bench::WorkloadOverrides;
use dlb_core::scenario::{self, ScenarioSpec, WorkloadSpec};
use dlb_core::{PlanRun, Strategy};
use std::time::Instant;

/// One timed strategy: sequential baseline vs parallel fan-out.
struct StrategyTiming {
    label: &'static str,
    sequential_ms: f64,
    parallel_ms: f64,
    identical: bool,
    plans: usize,
}

fn time_strategy(spec: &ScenarioSpec, strategy: Strategy) -> StrategyTiming {
    let experiment = |spec: &ScenarioSpec| {
        scenario::base_experiment(spec).expect("bundled scenarios always compile")
    };
    // Untimed warm-up so process-start costs (allocator growth, CPU ramp)
    // are not charged to whichever path happens to run first.
    experiment(spec)
        .run_sequential(strategy)
        .expect("warm-up run");

    // Fresh experiments per measurement so neither path hits a warm cache.
    let start = Instant::now();
    let sequential: Vec<PlanRun> = experiment(spec)
        .run_sequential(strategy)
        .expect("sequential run");
    let sequential_ms = start.elapsed().as_secs_f64() * 1e3;

    let parallel_exp = experiment(spec);
    let start = Instant::now();
    let parallel = parallel_exp.run(strategy).expect("parallel run");
    let parallel_ms = start.elapsed().as_secs_f64() * 1e3;

    StrategyTiming {
        label: strategy.label(),
        sequential_ms,
        parallel_ms,
        identical: *parallel == sequential,
        plans: sequential.len(),
    }
}

fn workload_json(spec: &ScenarioSpec) -> String {
    match &spec.workload {
        WorkloadSpec::Generated {
            queries,
            relations,
            scale,
            seed,
        } => format!(
            "{{\"queries\": {queries}, \"relations\": {relations}, \
             \"scale\": {scale}, \"seed\": {seed}}}"
        ),
        WorkloadSpec::Chain {
            relations,
            build_rows,
            probe_rows,
        } => format!(
            "{{\"chain\": {{\"relations\": {relations}, \"build_rows\": {build_rows}, \
             \"probe_rows\": {probe_rows}}}}}"
        ),
        WorkloadSpec::Mix(mix) => format!(
            "{{\"mix\": {{\"queries\": {}, \"relations\": {}, \"scale\": {}, \
             \"seed\": {}, \"policy\": \"{}\"}}}}",
            mix.queries,
            mix.relations,
            mix.scale,
            mix.seed,
            mix.policy.label()
        ),
    }
}

fn main() {
    dlb_core::init_threads_from_env();
    let overrides = WorkloadOverrides::from_env();
    let name = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "paper-base".to_string());
    let Some(spec) = scenario::find(&name) else {
        eprintln!(
            "unknown scenario {name:?}; registered: {}",
            scenario::names().join(", ")
        );
        std::process::exit(1);
    };
    let spec = overrides.apply(spec);
    let threads = rayon::current_num_threads();

    let timings: Vec<StrategyTiming> = spec
        .strategies
        .iter()
        .map(|&s| time_strategy(&spec, s))
        .collect();

    // Hand-rolled JSON: the report is flat enough that formatting it
    // directly is simpler than building a document tree.
    println!("{{");
    println!("  \"benchmark\": \"bench_report\",");
    println!("  \"scenario\": \"{}\",", spec.name);
    println!("  \"workload\": {},", workload_json(&spec));
    println!(
        "  \"machine\": {{\"nodes\": {}, \"processors_per_node\": {}}},",
        spec.machine.nodes, spec.machine.processors_per_node
    );
    println!("  \"threads\": {threads},");
    println!("  \"results\": [");
    let last = timings.len().saturating_sub(1);
    for (i, t) in timings.iter().enumerate() {
        let speedup = if t.parallel_ms > 0.0 {
            t.sequential_ms / t.parallel_ms
        } else {
            0.0
        };
        println!(
            "    {{\"strategy\": \"{}\", \"plans\": {}, \"sequential_ms\": {:.3}, \
             \"parallel_ms\": {:.3}, \"speedup\": {:.3}, \"identical\": {}}}{}",
            t.label,
            t.plans,
            t.sequential_ms,
            t.parallel_ms,
            speedup,
            t.identical,
            if i == last { "" } else { "," }
        );
    }
    println!("  ]");
    println!("}}");

    if timings.iter().any(|t| !t.identical) {
        eprintln!("bench_report: parallel results diverged from the sequential baseline");
        std::process::exit(1);
    }
}
