//! Machine-readable performance report of the evaluation pipeline.
//!
//! Times a **fixed reduced workload** (the harness defaults, overridable with
//! the usual `HIERDB_*` variables) per strategy, sequentially and with the
//! parallel plan fan-out, and prints one JSON document to stdout — the
//! perf-tracking record for the engine across PRs:
//!
//! ```text
//! cargo run --release -p dlb-bench --bin bench_report
//! HIERDB_THREADS=8 cargo run --release -p dlb-bench --bin bench_report
//! ```
//!
//! The report also cross-checks that the parallel results are bit-identical
//! to the sequential baseline (`"identical": true`); a `false` there is a
//! determinism regression, not a perf number.

use dlb_bench::HarnessConfig;
use dlb_core::{HierarchicalSystem, PlanRun, Strategy};
use std::time::Instant;

/// One timed strategy: sequential baseline vs parallel fan-out.
struct StrategyTiming {
    label: &'static str,
    sequential_ms: f64,
    parallel_ms: f64,
    identical: bool,
    plans: usize,
}

fn time_strategy(
    cfg: &HarnessConfig,
    system: &HierarchicalSystem,
    strategy: Strategy,
) -> StrategyTiming {
    // Untimed warm-up so process-start costs (allocator growth, CPU ramp)
    // are not charged to whichever path happens to run first.
    cfg.experiment(system.clone())
        .run_sequential(strategy)
        .expect("warm-up run");

    // Fresh experiments per measurement so neither path hits a warm cache.
    let sequential_exp = cfg.experiment(system.clone());
    let start = Instant::now();
    let sequential: Vec<PlanRun> = sequential_exp
        .run_sequential(strategy)
        .expect("sequential run");
    let sequential_ms = start.elapsed().as_secs_f64() * 1e3;

    let parallel_exp = cfg.experiment(system.clone());
    let start = Instant::now();
    let parallel = parallel_exp.run(strategy).expect("parallel run");
    let parallel_ms = start.elapsed().as_secs_f64() * 1e3;

    StrategyTiming {
        label: strategy.label(),
        sequential_ms,
        parallel_ms,
        identical: *parallel == sequential,
        plans: sequential.len(),
    }
}

fn main() {
    let cfg = HarnessConfig::from_env();
    let system = HierarchicalSystem::builder().build(); // paper base: 4 x 8
    let threads = rayon::current_num_threads();

    let timings: Vec<StrategyTiming> = [Strategy::Dynamic, Strategy::Fixed { error_rate: 0.0 }]
        .into_iter()
        .map(|s| time_strategy(&cfg, &system, s))
        .collect();

    // Hand-rolled JSON: the workspace's serde is an offline no-op shim, and
    // the report is flat enough that formatting it directly is simpler than
    // pulling in a serializer.
    println!("{{");
    println!("  \"benchmark\": \"bench_report\",");
    println!(
        "  \"workload\": {{\"queries\": {}, \"relations\": {}, \"scale\": {}, \"seed\": {}}},",
        cfg.queries, cfg.relations, cfg.scale, cfg.seed
    );
    println!(
        "  \"machine\": {{\"nodes\": {}, \"processors_per_node\": {}}},",
        system.nodes(),
        system.processors_per_node()
    );
    println!("  \"threads\": {threads},");
    println!("  \"results\": [");
    let last = timings.len().saturating_sub(1);
    for (i, t) in timings.iter().enumerate() {
        let speedup = if t.parallel_ms > 0.0 {
            t.sequential_ms / t.parallel_ms
        } else {
            0.0
        };
        println!(
            "    {{\"strategy\": \"{}\", \"plans\": {}, \"sequential_ms\": {:.3}, \
             \"parallel_ms\": {:.3}, \"speedup\": {:.3}, \"identical\": {}}}{}",
            t.label,
            t.plans,
            t.sequential_ms,
            t.parallel_ms,
            speedup,
            t.identical,
            if i == last { "" } else { "," }
        );
    }
    println!("  ]");
    println!("}}");

    if timings.iter().any(|t| !t.identical) {
        eprintln!("bench_report: parallel results diverged from the sequential baseline");
        std::process::exit(1);
    }
}
