//! Machine-readable performance report of the evaluation pipeline, and the
//! CI perf-regression gate built on it.
//!
//! Times the base configuration of a **registered scenario** (default:
//! `paper-base`, the 4×8 hierarchical machine with the reduced harness
//! workload — overridable with the usual `HIERDB_*` variables) per strategy,
//! sequentially and with the parallel plan fan-out, and prints one JSON
//! document to stdout — the perf-tracking record for the engine across PRs.
//! The gated sequential timing is sampled several times (default 5,
//! `HIERDB_BENCH_SAMPLES` overrides) after an untimed warm-up and
//! summarized with `criterion::stats` (MAD outlier rejection, mean, median,
//! minimum, 95% confidence interval), so the CI gate can compare confidence
//! intervals rather than single noisy samples:
//!
//! ```text
//! cargo run --release -p dlb-bench --bin bench_report
//! cargo run --release -p dlb-bench --bin bench_report -- fig10
//! HIERDB_THREADS=8 cargo run --release -p dlb-bench --bin bench_report
//!
//! # CI regression gate: save this run's timings as BENCH_pr.json and fail
//! # (exit 1) when the sequential wall-clock regressed >10% beyond what the
//! # confidence intervals explain (threshold overridable with
//! # HIERDB_BENCH_MAX_REGRESSION for noisy runners; see dlb_bench::gate).
//! bench_report --write BENCH_pr.json --baseline ci/bench-baseline.json
//! ```
//!
//! The report also cross-checks that the parallel results are bit-identical
//! to the sequential baseline (`"identical": true`); a `false` there is a
//! determinism regression, not a perf number.

use criterion::stats::{self, Stats};
use dlb_bench::{gate, WorkloadOverrides};
use dlb_core::scenario::{self, ScenarioSpec, WorkloadSpec};
use dlb_core::{PlanRun, Strategy};
use std::fmt::Write as _;
use std::time::Instant;

/// Environment variable overriding the sequential sample count.
const SAMPLES_ENV: &str = "HIERDB_BENCH_SAMPLES";
/// Default number of timed sequential runs per strategy.
const DEFAULT_SAMPLES: usize = 5;

/// One timed strategy: sampled sequential baseline vs parallel fan-out.
struct StrategyTiming {
    label: String,
    /// Summary over the sampled sequential runs, in **nanoseconds** (the
    /// [`stats`] unit; rendered as milliseconds).
    sequential: Stats,
    parallel_ms: f64,
    identical: bool,
    plans: usize,
}

fn sample_count() -> usize {
    match std::env::var(SAMPLES_ENV) {
        Err(_) => DEFAULT_SAMPLES,
        Ok(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!(
                    "warning: {SAMPLES_ENV}={v:?} is not a positive integer; \
                     using the default {DEFAULT_SAMPLES}"
                );
                DEFAULT_SAMPLES
            }
        },
    }
}

fn time_strategy(spec: &ScenarioSpec, strategy: Strategy, samples: usize) -> StrategyTiming {
    let experiment = |spec: &ScenarioSpec| {
        scenario::base_experiment(spec).expect("bundled scenarios always compile")
    };
    // Untimed warm-up so process-start costs (allocator growth, CPU ramp)
    // are not charged to the first sample.
    experiment(spec)
        .run_sequential(strategy)
        .expect("warm-up run");

    // Fresh experiments per sample so no measurement hits a warm cache.
    let mut sequential: Vec<PlanRun> = Vec::new();
    let mut samples_ns = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        sequential = experiment(spec)
            .run_sequential(strategy)
            .expect("sequential run");
        samples_ns.push(start.elapsed().as_nanos() as f64);
    }

    let parallel_exp = experiment(spec);
    let start = Instant::now();
    let parallel = parallel_exp.run(strategy).expect("parallel run");
    let parallel_ms = start.elapsed().as_secs_f64() * 1e3;

    StrategyTiming {
        label: strategy.label(),
        sequential: stats::summarize(&samples_ns),
        parallel_ms,
        identical: *parallel == sequential,
        plans: sequential.len(),
    }
}

fn workload_json(spec: &ScenarioSpec) -> String {
    match &spec.workload {
        WorkloadSpec::Generated {
            queries,
            relations,
            scale,
            seed,
        } => format!(
            "{{\"queries\": {queries}, \"relations\": {relations}, \
             \"scale\": {scale}, \"seed\": {seed}}}"
        ),
        WorkloadSpec::Chain {
            relations,
            build_rows,
            probe_rows,
        } => format!(
            "{{\"chain\": {{\"relations\": {relations}, \"build_rows\": {build_rows}, \
             \"probe_rows\": {probe_rows}}}}}"
        ),
        WorkloadSpec::Mix(mix) => format!(
            "{{\"mix\": {{\"queries\": {}, \"relations\": {}, \"scale\": {}, \
             \"seed\": {}, \"policy\": \"{}\"}}}}",
            mix.queries,
            mix.relations,
            mix.scale,
            mix.seed,
            mix.policy.label()
        ),
        WorkloadSpec::Open(open) => format!(
            "{{\"open\": {{\"kind\": \"{}\", \"rate_qps\": {}, \"queries\": {}, \
             \"templates\": {}, \"relations\": {}, \"scale\": {}, \"seed\": {}}}}}",
            open.kind.label(),
            open.rate_qps,
            open.queries,
            open.templates,
            open.relations,
            open.scale,
            open.seed
        ),
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_report [SCENARIO] [--write FILE] [--baseline FILE] [--paper]\n\
         \n\
         --write FILE     also save the JSON report to FILE (BENCH_<pr>.json style)\n\
         --baseline FILE  compare against a saved report (or array of reports); exit 1\n\
         \u{20}                when the summed sequential wall-clock regressed more than\n\
         \u{20}                10% beyond the confidence-interval overlap (override with\n\
         \u{20}                {}=<fraction>)",
        gate::MAX_REGRESSION_ENV
    );
    std::process::exit(2);
}

/// Renders the report as its JSON document. Hand-rolled: the report is flat
/// enough that formatting it directly is simpler than building a tree.
fn render_report(spec: &ScenarioSpec, threads: usize, timings: &[StrategyTiming]) -> String {
    let mut out = String::new();
    let w = &mut out;
    let _ = writeln!(w, "{{");
    let _ = writeln!(w, "  \"benchmark\": \"bench_report\",");
    let _ = writeln!(w, "  \"scenario\": \"{}\",", spec.name);
    let _ = writeln!(w, "  \"workload\": {},", workload_json(spec));
    let _ = writeln!(
        w,
        "  \"machine\": {{\"nodes\": {}, \"processors_per_node\": {}}},",
        spec.machine.nodes, spec.machine.processors_per_node
    );
    let _ = writeln!(w, "  \"threads\": {threads},");
    let _ = writeln!(w, "  \"results\": [");
    let last = timings.len().saturating_sub(1);
    for (i, t) in timings.iter().enumerate() {
        let s = &t.sequential;
        let ms = |ns: f64| ns / 1e6;
        let speedup = if t.parallel_ms > 0.0 {
            ms(s.mean_ns) / t.parallel_ms
        } else {
            0.0
        };
        let _ = writeln!(
            w,
            "    {{\"strategy\": \"{}\", \"plans\": {}, \"sequential_ms\": \
             {{\"mean\": {:.3}, \"median\": {:.3}, \"min\": {:.3}, \"ci95\": {:.3}, \
             \"samples\": {}, \"outliers\": {}}}, \
             \"parallel_ms\": {:.3}, \"speedup\": {:.3}, \"identical\": {}}}{}",
            t.label,
            t.plans,
            ms(s.mean_ns),
            ms(s.median_ns),
            ms(s.min_ns),
            ms(s.ci95_ns),
            s.samples,
            s.outliers,
            t.parallel_ms,
            speedup,
            t.identical,
            if i == last { "" } else { "," }
        );
    }
    let _ = writeln!(w, "  ]");
    let _ = writeln!(w, "}}");
    out
}

fn main() {
    dlb_core::init_threads_from_env();
    let overrides = WorkloadOverrides::from_env();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut name: Option<String> = None;
    let mut write_to: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let value_of = |i: &mut usize, flag: &str| -> String {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| {
                    eprintln!("{flag} needs a value");
                    usage()
                })
                .clone()
        };
        match args[i].as_str() {
            "--write" => write_to = Some(value_of(&mut i, "--write")),
            "--baseline" => baseline = Some(value_of(&mut i, "--baseline")),
            "--paper" => {} // consumed by WorkloadOverrides::from_env
            "--help" | "-h" => usage(),
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag}");
                usage()
            }
            scenario_name => {
                if name.replace(scenario_name.to_string()).is_some() {
                    eprintln!("only one scenario can be timed per run");
                    usage()
                }
            }
        }
        i += 1;
    }
    let name = name.unwrap_or_else(|| "paper-base".to_string());
    let Some(spec) = scenario::find(&name) else {
        eprintln!(
            "unknown scenario {name:?}; registered: {}",
            scenario::names().join(", ")
        );
        std::process::exit(1);
    };
    let spec = overrides.apply(spec);
    let threads = rayon::current_num_threads();

    let samples = sample_count();
    let timings: Vec<StrategyTiming> = spec
        .strategies
        .iter()
        .map(|&s| time_strategy(&spec, s, samples))
        .collect();

    let report = render_report(&spec, threads, &timings);
    print!("{report}");
    if let Some(path) = &write_to {
        if let Err(e) = std::fs::write(path, &report) {
            eprintln!("bench_report: cannot write {path}: {e}");
            std::process::exit(1);
        }
    }

    if timings.iter().any(|t| !t.identical) {
        eprintln!("bench_report: parallel results diverged from the sequential baseline");
        std::process::exit(1);
    }

    // The perf-regression gate: compare this run's sequential wall-clock
    // against a saved baseline report of the same scenario.
    if let Some(path) = &baseline {
        let baseline_text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("bench_report: cannot read baseline {path}: {e}");
                std::process::exit(1);
            }
        };
        let max_regression =
            gate::max_regression_from(std::env::var(gate::MAX_REGRESSION_ENV).ok().as_deref());
        match gate::compare(&report, &baseline_text, max_regression) {
            Ok(outcome) => {
                eprint!("{}", outcome.summary());
                if !outcome.passed() {
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("bench_report: baseline comparison failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
