//! Reprints the simulation-parameter tables of §5.1.1 from the live defaults,
//! so any drift between code and paper is immediately visible.

fn main() {
    print!("{}", dlb_bench::params_table());
}
