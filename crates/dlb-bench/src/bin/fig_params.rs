//! Reprints the simulation-parameter tables of §5.1.1 from the live defaults,
//! so any drift between code and paper is immediately visible.

use dlb_core::{CpuParams, DiskParams, NetworkParams};

fn main() {
    let cpu = CpuParams::default();
    let net = NetworkParams::default();
    let disk = DiskParams::default();

    println!("== §5.1.1 simulation parameters (library defaults vs paper) ==\n");

    println!("Processor");
    println!(
        "  speed                                {} MIPS   (paper: 40 MIPS)",
        cpu.mips
    );

    println!("\nNetwork parameters");
    println!(
        "  bandwidth                            {}   (paper: infinite)",
        match net.bandwidth_bytes_per_sec {
            None => "infinite".to_string(),
            Some(b) => format!("{b} B/s"),
        }
    );
    println!(
        "  end-to-end transmission delay        {}   (paper: 0.5 ms)",
        net.end_to_end_delay
    );
    println!(
        "  CPU cost for sending 8 KB            {} instr   (paper: 10000 instr)",
        net.send_instr_per_page
    );
    println!(
        "  CPU cost for receiving 8 KB          {} instr   (paper: 10000 instr)",
        net.recv_instr_per_page
    );

    println!("\nDisk parameters");
    println!(
        "  number of disks                      {} per processor   (paper: 1 per processor)",
        disk.disks_per_processor
    );
    println!(
        "  disk latency                         {}   (paper: 17 ms)",
        disk.latency
    );
    println!(
        "  seek time                            {}   (paper: 5 ms)",
        disk.seek_time
    );
    println!(
        "  transfer rate                        {:.1} MB/s   (paper: 6 MB/s)",
        disk.transfer_rate_bytes_per_sec / (1024.0 * 1024.0)
    );
    println!(
        "  CPU cost for asynchronous I/O init   {} instr   (paper: 5000 instr)",
        disk.async_io_init_instr
    );
    println!(
        "  I/O cache size                       {} pages   (paper: 8 pages)",
        disk.io_cache_pages
    );
}
