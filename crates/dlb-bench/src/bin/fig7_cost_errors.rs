//! Figure 7 — impact of cost-model errors on Fixed Processing: relative
//! degradation versus error rate (0–30 %) for 8/16/32/64 processors.
//! The reference response time is SP's, as in the paper.
//!
//! Thin wrapper over the bundled `fig7` scenario spec
//! ([`dlb_core::scenario::registry`]).

use dlb_bench::{figure_output, HarnessConfig};

fn main() {
    let cfg = HarnessConfig::from_env();
    print!("{}", figure_output("fig7", &cfg));
}
