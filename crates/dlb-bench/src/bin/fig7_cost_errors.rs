//! Figure 7 — impact of cost-model errors on Fixed Processing: relative
//! degradation versus error rate (0–30 %) for 8/16/32/64 processors.
//! The reference response time is SP's, as in the paper.

use dlb_bench::{fmt_ratio, par_points, HarnessConfig};
use dlb_core::{relative_performance, HierarchicalSystem, Strategy};

fn main() {
    let cfg = HarnessConfig::from_env();
    cfg.banner(
        "Figure 7",
        "impact of cost-model errors on FP (shared memory)",
    );

    let rates = [0.0, 0.05, 0.10, 0.20, 0.30];
    let procs = [8u32, 16, 32, 64];

    print!("{:>8}", "error");
    for p in procs {
        print!("  {:>8}", format!("{p} procs"));
    }
    println!();

    // Pre-build experiments (and SP references) per processor count,
    // concurrently.
    let experiments = par_points(&procs, |&p| {
        let e = cfg.experiment(HierarchicalSystem::shared_memory(p));
        let sp = e.run(Strategy::Synchronous).expect("SP");
        (e, sp)
    });

    // Sweep the (rate x procs) grid concurrently; each cell is one cached
    // FP run against the precomputed SP reference.
    let grid: Vec<(f64, Vec<f64>)> = par_points(&rates, |&rate| {
        let row = experiments
            .iter()
            .map(|(experiment, sp)| {
                let fp = experiment
                    .run(Strategy::Fixed { error_rate: rate })
                    .expect("FP");
                relative_performance(&fp, sp)
            })
            .collect();
        (rate, row)
    });

    for (rate, row) in grid {
        print!("{:>7.0}%", rate * 100.0);
        for cell in row {
            print!("  {:>8}", fmt_ratio(cell));
        }
        println!();
    }
    println!(
        "\npaper: FP degrades as the error rate grows; with few processors the degradation\n\
         explodes past ~20% error, with many processors it grows more steadily."
    );
}
