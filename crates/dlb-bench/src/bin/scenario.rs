//! Runs evaluation scenarios: bundled registry entries by name, or
//! user-authored JSON spec files — the front door for growing the evaluation
//! with new workloads without writing code.
//!
//! ```text
//! scenario --list                         # registered scenarios
//! scenario --names --kind open            # bare names, filtered (for CI)
//! scenario --strategies                   # the balancing-policy zoo

//! scenario fig9                           # run a bundled figure
//! scenario fig6 fig8 --format csv         # several, machine-readable
//! scenario --spec my_sweep.json           # run a spec file
//! scenario --export fig10                 # print a bundled spec as JSON
//! scenario --export my_sweep.json         # normalize + validate a spec file
//! scenario --validate                     # parse/round-trip every bundled spec
//! scenario fig6 fig9 --out-dir artifacts  # one run, <name>.{txt,json,csv} each
//! ```
//!
//! `--out-dir` writes every requested scenario's text, JSON and CSV
//! renderings from **one** simulation per scenario — this is what the
//! nightly paper-scale workflow uploads as artifacts.
//!
//! The usual workload knobs apply (`--paper`, `HIERDB_QUERIES`,
//! `HIERDB_RELATIONS`, `HIERDB_SCALE`, `HIERDB_SEED`, `HIERDB_THREADS`).
//! Bundled specs carry the harness default workload, so the environment
//! overrides behave exactly as for the figure binaries; spec files keep
//! their own workload except for knobs explicitly set.

use dlb_bench::WorkloadOverrides;
use dlb_core::scenario::{self, ScenarioSpec};

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Csv,
}

fn usage() -> ! {
    eprintln!(
        "usage: scenario [--list | --names [--kind closed|mix|open] | \
         --strategies | --validate | --export NAME] \
         [NAME...] [--spec FILE]... [--format text|json|csv] \
         [--out-dir DIR] [--paper]"
    );
    std::process::exit(2);
}

/// `--strategies`: the registered balancing-policy zoo — name, parameters
/// (with defaults), one-line summary and citation — straight from
/// [`dlb_core::policies`], so the listing can never drift from what specs
/// accept.
fn list_strategies() {
    for policy in dlb_core::policies() {
        let params = if policy.params().is_empty() {
            "-".to_string()
        } else {
            policy
                .params()
                .iter()
                .map(|p| format!("{}={}", p.name, p.default))
                .collect::<Vec<_>>()
                .join(", ")
        };
        println!("{:<10} params: {params}", policy.name());
        println!("{:<10}   {}", "", policy.summary());
        println!("{:<10}   [{}]", "", policy.citation());
    }
}

/// The workload kind of a registered scenario, as the `--list`/`--names`
/// taxonomy: closed (fixed batch), mix (concurrent closed set) or open
/// (stochastic arrival stream).
fn workload_kind(spec: &ScenarioSpec) -> &'static str {
    if spec.workload.is_open() {
        "open"
    } else if spec.workload.is_mix() {
        "mix"
    } else {
        "closed"
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut format = Format::Text;
    let mut names: Vec<String> = Vec::new();
    let mut spec_files: Vec<String> = Vec::new();
    let mut list = false;
    let mut bare_names = false;
    let mut kind_filter: Option<String> = None;
    let mut strategies = false;
    let mut validate = false;
    let mut export: Option<String> = None;
    let mut out_dir: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let value_of = |i: &mut usize, flag: &str| -> String {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| {
                    eprintln!("{flag} needs a value");
                    usage()
                })
                .clone()
        };
        match args[i].as_str() {
            "--list" => list = true,
            "--names" => bare_names = true,
            "--kind" => {
                let kind = value_of(&mut i, "--kind");
                if !matches!(kind.as_str(), "closed" | "mix" | "open") {
                    eprintln!("unknown kind {kind:?} (want closed, mix or open)");
                    usage()
                }
                kind_filter = Some(kind);
            }
            "--strategies" => strategies = true,
            "--validate" => validate = true,
            "--export" => export = Some(value_of(&mut i, "--export")),
            "--spec" => spec_files.push(value_of(&mut i, "--spec")),
            "--out-dir" => out_dir = Some(value_of(&mut i, "--out-dir")),
            "--format" => {
                format = match value_of(&mut i, "--format").as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "csv" => Format::Csv,
                    other => {
                        eprintln!("unknown format {other:?}");
                        usage()
                    }
                }
            }
            "--paper" => {} // consumed by WorkloadOverrides::from_env
            "--help" | "-h" => usage(),
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag}");
                usage()
            }
            name => names.push(name.to_string()),
        }
        i += 1;
    }

    dlb_core::init_threads_from_env();

    if list || bare_names {
        // `--names` emits one bare name per line so workflows can enumerate
        // the registry (`scenario --names --kind open`) instead of keeping
        // hand-maintained scenario lists that drift from the code.
        for spec in scenario::registry() {
            let kind = workload_kind(&spec);
            if kind_filter.as_deref().is_some_and(|want| want != kind) {
                continue;
            }
            if bare_names {
                println!("{}", spec.name);
            } else {
                println!(
                    "{:<20} {:<7} {:<24} {}",
                    spec.name, kind, spec.title, spec.description
                );
            }
        }
        return;
    }
    if kind_filter.is_some() {
        eprintln!("--kind only applies to --list/--names");
        usage();
    }
    if strategies {
        list_strategies();
        return;
    }
    if validate {
        validate_registry();
        return;
    }
    if let Some(name) = export {
        // Everything down this path is a `dlb_common::DlbError` — unknown
        // names, unparseable files, specs whose axes their workload cannot
        // support — reported cleanly instead of panicking.
        match export_spec(&name) {
            Ok(text) => print!("{text}"),
            Err(e) => {
                eprintln!("scenario --export {name}: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if names.is_empty() && spec_files.is_empty() {
        usage();
    }

    let overrides = WorkloadOverrides::from_env();
    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create --out-dir {dir}: {e}");
            std::process::exit(1);
        }
    }
    let mut first = true;
    for name in names {
        run_one(
            overrides.apply(find_or_exit(&name)),
            format,
            out_dir.as_deref(),
            &mut first,
        );
    }
    for path in spec_files {
        let spec = load_spec_file(&path).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        });
        run_one(
            overrides.apply(spec),
            format,
            out_dir.as_deref(),
            &mut first,
        );
    }
}

/// Reads and parses (and thereby validates) one JSON spec file; every
/// failure — unreadable file, bad JSON, unknown or unsupported axes — is a
/// [`dlb_common::DlbError`]. Shared by `--spec` and `--export`.
fn load_spec_file(path: &str) -> dlb_common::Result<ScenarioSpec> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| dlb_common::DlbError::Parse(format!("cannot read {path}: {e}")))?;
    ScenarioSpec::from_json(&text)
}

/// Resolves `--export`: a registry name, or a path to a JSON spec file
/// (parsed and validated, then re-emitted in normalized form). All failures
/// are proper [`dlb_common::DlbError`]s.
fn export_spec(name_or_path: &str) -> dlb_common::Result<String> {
    match scenario::export(name_or_path) {
        Ok(text) => Ok(text),
        Err(_not_found) if std::path::Path::new(name_or_path).exists() => {
            // `load_spec_file` validates, so axis/workload mismatches
            // surface here as errors rather than panics later in the driver.
            Ok(load_spec_file(name_or_path)?.to_json())
        }
        Err(not_found) => Err(not_found),
    }
}

fn find_or_exit(name: &str) -> ScenarioSpec {
    scenario::find(name).unwrap_or_else(|| {
        eprintln!(
            "unknown scenario {name:?}; registered: {}",
            scenario::names().join(", ")
        );
        std::process::exit(1);
    })
}

fn run_one(spec: ScenarioSpec, format: Format, out_dir: Option<&str>, first: &mut bool) {
    let name = spec.name.clone();
    let report = scenario::run_scenario(&spec).unwrap_or_else(|e| {
        eprintln!("scenario {name}: {e}");
        std::process::exit(1);
    });
    // With --out-dir, one simulation feeds all three renderings on disk and
    // stdout only narrates progress.
    if let Some(dir) = out_dir {
        let emissions = [
            ("txt", scenario::render_text(&report)),
            ("json", scenario::render_json(&report)),
            ("csv", scenario::render_csv(&report)),
        ];
        for (ext, content) in emissions {
            let path = std::path::Path::new(dir).join(format!("{name}.{ext}"));
            if let Err(e) = std::fs::write(&path, content) {
                eprintln!("scenario {name}: cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
        println!("{name}: wrote {dir}/{name}.{{txt,json,csv}}");
        return;
    }
    if !*first && format == Format::Text {
        println!();
    }
    *first = false;
    match format {
        Format::Text => print!("{}", scenario::render_text(&report)),
        Format::Json => print!("{}", scenario::render_json(&report)),
        Format::Csv => print!("{}", scenario::render_csv(&report)),
    }
}

/// Checks that every bundled spec validates and survives a JSON round-trip
/// unchanged (the CI gate behind `scenario --validate`).
fn validate_registry() {
    let mut failures = 0usize;
    let specs = scenario::registry();
    for spec in &specs {
        let mut problems: Vec<String> = Vec::new();
        if let Err(e) = spec.validate() {
            problems.push(format!("validate: {e}"));
        }
        match ScenarioSpec::from_json(&spec.to_json()) {
            Ok(back) if back == *spec => {}
            Ok(_) => problems.push("JSON round-trip altered the spec".to_string()),
            Err(e) => problems.push(format!("JSON round-trip failed: {e}")),
        }
        if problems.is_empty() {
            println!("{:<12} ok", spec.name);
        } else {
            failures += 1;
            for p in problems {
                println!("{:<12} FAIL: {p}", spec.name);
            }
        }
    }
    println!("{} scenarios, {} failing", specs.len(), failures);
    if failures > 0 {
        std::process::exit(1);
    }
}
