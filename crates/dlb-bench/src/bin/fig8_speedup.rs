//! Figure 8 — speed-up of SP, DP and FP on a single shared-memory node from 1
//! to 64 processors (no skew).
//!
//! Thin wrapper over the bundled `fig8` scenario spec
//! ([`dlb_core::scenario::registry`]).

use dlb_bench::{figure_output, HarnessConfig};

fn main() {
    let cfg = HarnessConfig::from_env();
    print!("{}", figure_output("fig8", &cfg));
}
