//! Figure 8 — speed-up of SP, DP and FP on a single shared-memory node from 1
//! to 64 processors (no skew).

use dlb_bench::{fmt_ratio, par_points, HarnessConfig};
use dlb_core::{speedup, HierarchicalSystem, Strategy};

fn main() {
    let cfg = HarnessConfig::from_env();
    cfg.banner(
        "Figure 8",
        "speed-up of SP, DP, FP (shared memory, no skew)",
    );

    let baseline = cfg.experiment(HierarchicalSystem::shared_memory(1));
    let sp1 = baseline.run(Strategy::Synchronous).expect("SP baseline");
    let dp1 = baseline.run(Strategy::Dynamic).expect("DP baseline");
    let fp1 = baseline
        .run(Strategy::Fixed { error_rate: 0.0 })
        .expect("FP baseline");

    let procs = [1u32, 8, 16, 32, 48, 64];
    let rows = par_points(&procs, |&procs| {
        // The 1-processor point IS the baseline; a clone shares its cache so
        // the slowest configuration is not simulated twice.
        let experiment = if procs == 1 {
            baseline.clone()
        } else {
            baseline.on_system(HierarchicalSystem::shared_memory(procs))
        };
        let sp = experiment.run(Strategy::Synchronous).expect("SP");
        let dp = experiment.run(Strategy::Dynamic).expect("DP");
        let fp = experiment
            .run(Strategy::Fixed { error_rate: 0.0 })
            .expect("FP");
        (
            procs,
            speedup(&sp, &sp1),
            speedup(&dp, &dp1),
            speedup(&fp, &fp1),
        )
    });

    println!("{:>6}  {:>8}  {:>8}  {:>8}", "procs", "SP", "DP", "FP");
    for (procs, sp, dp, fp) in rows {
        println!(
            "{procs:>6}  {:>8}  {:>8}  {:>8}",
            fmt_ratio(sp),
            fmt_ratio(dp),
            fmt_ratio(fp),
        );
    }
    println!(
        "\npaper: SP and DP show near-linear speed-up to 32 processors and bend beyond\n\
         (memory-hierarchy overhead); FP stays clearly below both."
    );
}
