//! Figure 6 — relative performance of SP, DP and FP on a single shared-memory
//! node, without data skew, for 16/32/64 processors (SP is the reference).

use dlb_bench::{fmt_ratio, par_points, HarnessConfig};
use dlb_core::{relative_performance, HierarchicalSystem, Strategy};

fn main() {
    let cfg = HarnessConfig::from_env();
    cfg.banner(
        "Figure 6",
        "relative performance of SP, DP, FP (shared memory, no skew)",
    );

    let procs = [16u32, 32, 64];
    let rows = par_points(&procs, |&procs| {
        let system = HierarchicalSystem::shared_memory(procs);
        let experiment = cfg.experiment(system);
        let sp = experiment.run(Strategy::Synchronous).expect("SP");
        let dp = experiment.run(Strategy::Dynamic).expect("DP");
        let fp = experiment
            .run(Strategy::Fixed { error_rate: 0.0 })
            .expect("FP");
        (
            procs,
            relative_performance(&sp, &sp),
            relative_performance(&dp, &sp),
            relative_performance(&fp, &sp),
        )
    });

    println!("{:>6}  {:>8}  {:>8}  {:>8}", "procs", "SP", "DP", "FP");
    for (procs, sp, dp, fp) in rows {
        println!(
            "{procs:>6}  {:>8}  {:>8}  {:>8}",
            fmt_ratio(sp),
            fmt_ratio(dp),
            fmt_ratio(fp),
        );
    }
    println!(
        "\npaper: SP = 1.0 (best); DP within a few percent of SP; FP clearly worse,\n\
         and worse with fewer processors (discretization errors)."
    );
}
