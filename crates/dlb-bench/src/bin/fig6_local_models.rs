//! Figure 6 — relative performance of SP, DP and FP on a single shared-memory
//! node, without data skew, for 16/32/64 processors (SP is the reference).
//!
//! Thin wrapper over the bundled `fig6` scenario spec
//! ([`dlb_core::scenario::registry`]).

use dlb_bench::{figure_output, HarnessConfig};

fn main() {
    let cfg = HarnessConfig::from_env();
    print!("{}", figure_output("fig6", &cfg));
}
