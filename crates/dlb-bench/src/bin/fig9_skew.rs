//! Figure 9 — impact of redistribution skew on Dynamic Processing with 64
//! processors: relative degradation versus Zipf factor 0 → 1 (reference is
//! the unskewed run).

use dlb_bench::{fmt_ratio, par_points, HarnessConfig};
use dlb_core::{relative_performance, HierarchicalSystem, Strategy};

fn main() {
    let cfg = HarnessConfig::from_env();
    cfg.banner(
        "Figure 9",
        "impact of redistribution skew on DP (64 processors)",
    );

    let base_system = HierarchicalSystem::shared_memory(64);
    let experiment = cfg.experiment(base_system.clone());
    let reference = experiment.run(Strategy::Dynamic).expect("reference");

    let skews = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    let rows = par_points(&skews, |&skew| {
        let skewed = experiment.on_system(base_system.clone().with_skew(skew));
        let runs = skewed.run(Strategy::Dynamic).expect("skewed DP");
        (skew, relative_performance(&runs, &reference))
    });

    println!("{:>6}  {:>14}", "skew", "degradation");
    for (skew, degradation) in rows {
        println!("{skew:>6.1}  {:>14}", fmt_ratio(degradation));
    }
    println!(
        "\npaper: the impact of skew on DP is insignificant (well under 10% even at\n\
         skew factor 1), thanks to high fragmentation and shared activation queues."
    );
}
