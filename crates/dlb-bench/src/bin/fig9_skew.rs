//! Figure 9 — impact of redistribution skew on Dynamic Processing with 64
//! processors: relative degradation versus Zipf factor 0 → 1 (reference is
//! the unskewed run).
//!
//! Thin wrapper over the bundled `fig9` scenario spec
//! ([`dlb_core::scenario::registry`]).

use dlb_bench::{figure_output, HarnessConfig};

fn main() {
    let cfg = HarnessConfig::from_env();
    print!("{}", figure_output("fig9", &cfg));
}
