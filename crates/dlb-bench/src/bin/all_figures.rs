//! Runs every figure scenario in sequence (the full evaluation of the
//! paper), in-process from the bundled scenario registry.
//!
//! ```text
//! cargo run --release -p dlb-bench --bin all_figures            # reduced scale
//! cargo run --release -p dlb-bench --bin all_figures -- --paper # paper scale (slow)
//! ```

use dlb_bench::{figure_output, params_table, HarnessConfig};

fn main() {
    let cfg = HarnessConfig::from_env();
    println!();
    print!("{}", params_table());
    for name in ["fig6", "fig7", "fig8", "fig9", "fig10", "chain53"] {
        println!();
        print!("{}", figure_output(name, &cfg));
    }
}
