//! Runs every figure harness in sequence (the full evaluation of the paper).
//!
//! ```text
//! cargo run --release -p dlb-bench --bin all_figures            # reduced scale
//! cargo run --release -p dlb-bench --bin all_figures -- --paper # paper scale (slow)
//! ```

use std::process::Command;

fn main() {
    let forward: Vec<String> = std::env::args().skip(1).collect();
    // bench_report is deliberately absent: it measures wall-clock and does
    // not belong in the figure regeneration pass.
    let binaries = [
        "fig_params",
        "fig6_local_models",
        "fig7_cost_errors",
        "fig8_speedup",
        "fig9_skew",
        "fig10_global",
    ];
    let exe = std::env::current_exe().expect("current executable path");
    let dir = exe.parent().expect("binary directory").to_path_buf();
    for bin in binaries {
        println!();
        let path = dir.join(bin);
        let status = Command::new(&path)
            .args(&forward)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        if !status.success() {
            eprintln!("{bin} exited with {status}");
            std::process::exit(1);
        }
    }
}
