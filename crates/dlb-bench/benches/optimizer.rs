//! Micro-benchmarks of the query generator, bushy-tree optimizer and plan
//! construction (the compile-time path of the system).

use criterion::{criterion_group, criterion_main, Criterion};
use dlb_query::generator::{WorkloadGenerator, WorkloadParams};
use dlb_query::optimizer::Optimizer;
use dlb_query::optree::OperatorTree;
use dlb_query::plan::{ChainScheduling, OperatorHomes, ParallelPlan};
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    c.bench_function("generate_12_relation_query", |b| {
        let generator = WorkloadGenerator::new(WorkloadParams::default());
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(generator.generate_query(dlb_common::QueryId::new(i)))
        });
    });
}

fn bench_optimizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer");
    for relations in [6usize, 12] {
        let query = WorkloadGenerator::new(WorkloadParams {
            queries: 1,
            relations_per_query: relations,
            ..WorkloadParams::default()
        })
        .generate_query(dlb_common::QueryId::new(0));
        let optimizer = Optimizer::with_defaults();
        group.bench_function(format!("optimize_{relations}_relations"), |b| {
            b.iter(|| black_box(optimizer.optimize(&query).unwrap()));
        });
    }
    group.finish();
}

fn bench_plan_building(c: &mut Criterion) {
    let query = WorkloadGenerator::new(WorkloadParams::default())
        .generate_query(dlb_common::QueryId::new(3));
    let tree = Optimizer::with_defaults()
        .optimize(&query)
        .unwrap()
        .remove(0);
    c.bench_function("macro_expand_and_schedule_12_relations", |b| {
        b.iter(|| {
            let optree = OperatorTree::from_join_tree(black_box(&tree));
            let homes = OperatorHomes::all_nodes(&optree, 4);
            black_box(
                ParallelPlan::build(query.id, optree, homes, ChainScheduling::OneAtATime).unwrap(),
            )
        });
    });
}

criterion_group!(
    benches,
    bench_generation,
    bench_optimizer,
    bench_plan_building
);
criterion_main!(benches);
