//! Micro-benchmarks of activation queues and the skew router: the data
//! structures every activation passes through (engine hot path).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dlb_common::OperatorId;
use dlb_exec::{Activation, ActivationQueue, OutputRouter};
use std::hint::black_box;

fn bench_queue_push_pop(c: &mut Criterion) {
    let mut group = c.benchmark_group("activation_queue");
    group.bench_function("push_pop_1k_bounded", |b| {
        b.iter_batched(
            || ActivationQueue::new(2_048),
            |mut q| {
                for i in 0..1_000u64 {
                    q.push(Activation::data(OperatorId::new(0), i % 128 + 1));
                }
                while let Some(a) = q.pop() {
                    black_box(a);
                }
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("push_pop_1k_unbounded", |b| {
        b.iter_batched(
            || ActivationQueue::new(0),
            |mut q| {
                for i in 0..1_000u64 {
                    q.push(Activation::data(OperatorId::new(0), i % 128 + 1));
                }
                while let Some(a) = q.pop() {
                    black_box(a);
                }
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("drain_half_of_1k", |b| {
        b.iter_batched(
            || {
                let mut q = ActivationQueue::new(0);
                for i in 0..1_000u64 {
                    q.push(Activation::data(OperatorId::new(0), i + 1));
                }
                q
            },
            |mut q| black_box(q.drain(500)),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_router(c: &mut Criterion) {
    let mut group = c.benchmark_group("output_router");
    for (label, slots, theta) in [
        ("uniform_64_slots", 64usize, 0.0f64),
        ("skewed_64_slots", 64, 0.8),
        ("skewed_512_slots", 512, 0.8),
    ] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || OutputRouter::new(slots, theta, 3),
                |mut r| {
                    for _ in 0..1_000 {
                        black_box(r.route(128));
                    }
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_queue_push_pop, bench_router);
criterion_main!(benches);
