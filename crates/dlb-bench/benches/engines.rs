//! End-to-end engine benchmarks: one small multi-join plan executed under
//! each strategy (DP, FP, SP) and under DP on a hierarchical machine. These
//! measure simulator throughput, not the simulated response time.

use criterion::{criterion_group, criterion_main, Criterion};
use dlb_core::{AdHocQuery, HierarchicalSystem, Strategy};
use std::hint::black_box;

fn query() -> AdHocQuery {
    AdHocQuery::new("bench")
        .relation("a", 8_000)
        .relation("b", 16_000)
        .relation("c", 12_000)
        .relation("d", 4_000)
        .join("a", "b")
        .join("b", "c")
        .join("c", "d")
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engines");
    group.sample_size(20);

    let sm = HierarchicalSystem::shared_memory(8);
    let sm_plan = query().compile(&sm).unwrap().remove(0);
    group.bench_function("dp_shared_memory_8p", |b| {
        b.iter(|| black_box(sm.run(&sm_plan, Strategy::dynamic()).unwrap()));
    });
    group.bench_function("fp_shared_memory_8p", |b| {
        b.iter(|| black_box(sm.run(&sm_plan, Strategy::fixed(0.0)).unwrap()));
    });
    group.bench_function("sp_shared_memory_8p", |b| {
        b.iter(|| black_box(sm.run(&sm_plan, Strategy::synchronous()).unwrap()));
    });

    let hier = HierarchicalSystem::hierarchical(4, 4).with_skew(0.6);
    let hier_plan = query().compile(&hier).unwrap().remove(0);
    group.bench_function("dp_hierarchical_4x4_skew06", |b| {
        b.iter(|| black_box(hier.run(&hier_plan, Strategy::dynamic()).unwrap()));
    });
    group.bench_function("fp_hierarchical_4x4_skew06", |b| {
        b.iter(|| black_box(hier.run(&hier_plan, Strategy::fixed(0.0)).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
