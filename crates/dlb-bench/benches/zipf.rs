//! Micro-benchmarks of the Zipf skew generator used for redistribution and
//! placement skew.

use criterion::{criterion_group, criterion_main, Criterion};
use dlb_common::ZipfDistribution;
use std::hint::black_box;

fn bench_zipf_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("zipf_build");
    for n in [64usize, 1_024, 16_384] {
        group.bench_function(format!("n{n}_theta08"), |b| {
            b.iter(|| black_box(ZipfDistribution::new(n, 0.8)));
        });
    }
    group.finish();
}

fn bench_zipf_split(c: &mut Criterion) {
    let mut group = c.benchmark_group("zipf_split");
    let dist = ZipfDistribution::new(1_024, 0.8);
    group.bench_function("split_1M_tuples_over_1024_buckets", |b| {
        b.iter(|| black_box(dist.split(1_000_000)));
    });
    let uniform = ZipfDistribution::new(1_024, 0.0);
    group.bench_function("split_1M_tuples_uniform", |b| {
        b.iter(|| black_box(uniform.split(1_000_000)));
    });
    group.finish();
}

criterion_group!(benches, bench_zipf_build, bench_zipf_split);
criterion_main!(benches);
