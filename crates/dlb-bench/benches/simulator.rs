//! Micro-benchmarks of the discrete-event substrate: calendar throughput,
//! disk timelines and network accounting.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dlb_common::config::{CpuParams, DiskParams, NetworkParams};
use dlb_common::{DiskId, NodeId, SimTime};
use dlb_sim::{DiskFarm, EventCalendar, Network};
use std::hint::black_box;

fn bench_calendar(c: &mut Criterion) {
    c.bench_function("calendar_schedule_pop_10k", |b| {
        b.iter_batched(
            EventCalendar::<u64>::new,
            |mut cal| {
                for i in 0..10_000u64 {
                    // Pseudo-random but deterministic times.
                    let t = (i.wrapping_mul(2_654_435_761)) % 1_000_000;
                    cal.schedule_at(SimTime::from_nanos(t), i);
                }
                while let Some(e) = cal.pop() {
                    black_box(e);
                }
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_disks(c: &mut Criterion) {
    c.bench_function("disk_farm_10k_reads", |b| {
        b.iter_batched(
            || DiskFarm::new(DiskParams::default(), 4, 8),
            |mut farm| {
                for i in 0..10_000u32 {
                    let disk = DiskId::new(NodeId::new(i % 4), (i / 4) % 8);
                    black_box(farm.read_streaming(disk, SimTime::from_nanos(i as u64), 8));
                }
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_network(c: &mut Criterion) {
    c.bench_function("network_10k_sends", |b| {
        b.iter_batched(
            || Network::new(NetworkParams::default(), CpuParams::default()),
            |mut net| {
                for i in 0..10_000u32 {
                    let from = NodeId::new(i % 4);
                    let to = NodeId::new((i + 1) % 4);
                    black_box(net.send(from, to, 12_800, SimTime::from_nanos(i as u64)));
                }
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(benches, bench_calendar, bench_disks, bench_network);
criterion_main!(benches);
