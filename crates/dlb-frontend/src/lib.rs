//! Front-end request layer: single-flight coalescing and an LRU/TTL result
//! cache.
//!
//! At millions of users an open arrival stream is full of *identical*
//! in-flight queries, and the paper's DP/FP balancing only ever sees the
//! residual load left after the front end. This crate supplies the two
//! deduplication mechanisms, as pure deterministic data structures with no
//! dependency on the engine:
//!
//! - [`SingleFlight`] — concurrent requests for the same key subscribe as
//!   *followers* of the first in-flight request (the *leader*) and all
//!   receive the leader's result when it completes, as in CeresDB/HoraeDB's
//!   `RequestNotifiers` dedup layer;
//! - [`ResultCache`] — a bounded least-recently-used cache whose entries
//!   expire after a time-to-live, with hit/stale/evict accounting
//!   ([`CacheStats`]) and an optional event log ([`CacheEvent`]) from which
//!   tests reconstruct and verify the residency invariants.
//!
//! Both structures are driven by an explicit clock (`now` parameters), so a
//! simulated engine advances them on virtual time and every outcome is
//! bit-reproducible. Iteration order never depends on hash-map layout: the
//! recency list is kept explicitly.
//!
//! [`FrontendConfig`] bundles the knobs a caller threads through to the
//! engine, and [`FrontendStats`] the accounting a report carries back out.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::HashMap;
use std::hash::Hash;

/// Configuration of the front-end layer above the engine.
///
/// The default configuration is fully inert: no cache (`cache_capacity` 0),
/// no coalescing, zero fan-out cost — an engine run under the default config
/// must be bit-identical to one without any front end at all.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontendConfig {
    /// Maximum number of cached results (0 disables the cache).
    pub cache_capacity: usize,
    /// Seconds a cached result stays fresh; `f64::INFINITY` never expires.
    pub cache_ttl_secs: f64,
    /// Deduplicate concurrent identical in-flight requests (single-flight).
    pub coalesce: bool,
    /// Seconds it takes to fan a ready result out to one subscriber: cache
    /// hits retire this long after arrival, followers this long after their
    /// leader completes.
    pub fanout_cost_secs: f64,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        Self {
            cache_capacity: 0,
            cache_ttl_secs: f64::INFINITY,
            coalesce: false,
            fanout_cost_secs: 0.0,
        }
    }
}

impl FrontendConfig {
    /// True when any front-end mechanism is active. When false, the engine
    /// takes its historical path untouched.
    pub fn enabled(&self) -> bool {
        self.cache_capacity > 0 || self.coalesce
    }

    /// Validates the knobs: the TTL must be positive (infinity allowed) and
    /// the fan-out cost finite and non-negative.
    pub fn validate(&self) -> Result<(), String> {
        if self.cache_ttl_secs.is_nan() || self.cache_ttl_secs <= 0.0 {
            return Err(format!(
                "front-end cache TTL must be positive: {}",
                self.cache_ttl_secs
            ));
        }
        if !self.fanout_cost_secs.is_finite() || self.fanout_cost_secs < 0.0 {
            return Err(format!(
                "front-end fan-out cost must be finite and non-negative: {}",
                self.fanout_cost_secs
            ));
        }
        Ok(())
    }
}

/// Front-end accounting of one engine run: where every completed request was
/// served from. `engine_queries + cache_hits + coalesced` equals the total
/// number of completed requests.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FrontendStats {
    /// Requests served straight from a fresh cache entry.
    pub cache_hits: u64,
    /// Cache lookups that found an entry past its TTL (evicted on sight).
    pub cache_stale: u64,
    /// Fresh entries evicted to make room (capacity pressure).
    pub cache_evictions: u64,
    /// Cache lookups that found nothing.
    pub cache_misses: u64,
    /// Requests that never consulted the cache (cache disabled while
    /// coalescing is on).
    pub cache_bypass: u64,
    /// Requests that retired as followers of an in-flight leader.
    pub coalesced: u64,
    /// Requests the engine actually executed.
    pub engine_queries: u64,
}

/// Counter snapshot of a [`ResultCache`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CacheStats {
    /// Lookups that returned a fresh value.
    pub hits: u64,
    /// Lookups that found an expired entry (removed on sight).
    pub stale: u64,
    /// Fresh entries evicted under capacity pressure.
    pub evictions: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Values inserted (including replacements of an existing key).
    pub inserts: u64,
}

/// What a cache event log records (see [`ResultCache::with_event_log`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheEventKind {
    /// A value was inserted (or replaced) for the key.
    Insert,
    /// A lookup was served from a fresh entry.
    Hit,
    /// A lookup found the entry expired and removed it.
    Stale,
    /// A fresh entry was evicted to make room for another key.
    Evict,
}

/// One timestamped entry of a [`ResultCache`] event log.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEvent<K> {
    /// The clock value the operation was driven with.
    pub at_secs: f64,
    /// What happened.
    pub kind: CacheEventKind,
    /// The key it happened to.
    pub key: K,
}

/// Outcome of a [`ResultCache::lookup`].
#[derive(Debug, Clone, PartialEq)]
pub enum Lookup<V> {
    /// A fresh entry: its value, cloned out.
    Hit(V),
    /// An entry existed but its TTL had lapsed; it was removed.
    Stale,
    /// No entry for the key.
    Miss,
}

struct CacheEntry<V> {
    value: V,
    inserted_at: f64,
}

/// A bounded LRU cache with per-entry TTL, driven by an explicit clock.
///
/// Recency is tracked in an explicit list (most recent at the back), so
/// eviction order is a pure function of the operation sequence — never of
/// hash-map iteration order — which keeps simulated runs deterministic.
pub struct ResultCache<K, V> {
    capacity: usize,
    ttl_secs: f64,
    entries: HashMap<K, CacheEntry<V>>,
    /// Keys ordered least → most recently used.
    recency: Vec<K>,
    stats: CacheStats,
    log: Option<Vec<CacheEvent<K>>>,
}

impl<K: Eq + Hash + Clone, V: Clone> ResultCache<K, V> {
    /// Creates a cache holding at most `capacity` entries, each fresh for
    /// `ttl_secs` after insertion (`f64::INFINITY` = never expires).
    /// A zero capacity disables the cache: inserts are dropped and every
    /// lookup misses.
    pub fn new(capacity: usize, ttl_secs: f64) -> Self {
        assert!(ttl_secs > 0.0, "cache TTL must be positive: {ttl_secs}");
        Self {
            capacity,
            ttl_secs,
            entries: HashMap::new(),
            recency: Vec::new(),
            stats: CacheStats::default(),
            log: None,
        }
    }

    /// Enables the event log (for invariant-reconstruction tests).
    pub fn with_event_log(mut self) -> Self {
        self.log = Some(Vec::new());
        self
    }

    /// The recorded events, oldest first (empty unless
    /// [`with_event_log`](Self::with_event_log) was called).
    pub fn events(&self) -> &[CacheEvent<K>] {
        self.log.as_deref().unwrap_or(&[])
    }

    /// The counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of resident entries (fresh or not-yet-observed-stale).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn record(&mut self, at_secs: f64, kind: CacheEventKind, key: &K) {
        if let Some(log) = &mut self.log {
            log.push(CacheEvent {
                at_secs,
                kind,
                key: key.clone(),
            });
        }
    }

    fn touch(&mut self, key: &K) {
        if let Some(pos) = self.recency.iter().position(|k| k == key) {
            let k = self.recency.remove(pos);
            self.recency.push(k);
        }
    }

    /// Looks `key` up at clock `now`. A fresh entry is cloned out and
    /// becomes most-recently-used; an expired entry is removed and reported
    /// as [`Lookup::Stale`].
    pub fn lookup(&mut self, key: &K, now: f64) -> Lookup<V> {
        match self.entries.get(key) {
            None => {
                self.stats.misses += 1;
                Lookup::Miss
            }
            Some(entry) if now - entry.inserted_at <= self.ttl_secs => {
                let value = entry.value.clone();
                self.stats.hits += 1;
                self.touch(key);
                self.record(now, CacheEventKind::Hit, key);
                Lookup::Hit(value)
            }
            Some(_) => {
                self.entries.remove(key);
                self.recency.retain(|k| k != key);
                self.stats.stale += 1;
                self.record(now, CacheEventKind::Stale, key);
                Lookup::Stale
            }
        }
    }

    /// Inserts (or replaces) `key` at clock `now`, evicting the
    /// least-recently-used entry if the cache is full. A no-op at capacity 0.
    pub fn insert(&mut self, key: K, value: V, now: f64) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.contains_key(&key) {
            self.touch(&key);
        } else {
            if self.entries.len() == self.capacity {
                let lru = self.recency.remove(0);
                self.entries.remove(&lru);
                self.stats.evictions += 1;
                self.record(now, CacheEventKind::Evict, &lru);
            }
            self.recency.push(key.clone());
        }
        self.stats.inserts += 1;
        self.record(now, CacheEventKind::Insert, &key);
        self.entries.insert(
            key,
            CacheEntry {
                value,
                inserted_at: now,
            },
        );
    }
}

/// Single-flight deduplication: the first request for a key becomes the
/// *leader*; concurrent requests for the same key *attach* as followers and
/// are all handed the leader's result on completion.
pub struct SingleFlight<K, S> {
    in_flight: HashMap<K, Vec<S>>,
    coalesced: u64,
}

impl<K, S> Default for SingleFlight<K, S> {
    fn default() -> Self {
        Self {
            in_flight: HashMap::new(),
            coalesced: 0,
        }
    }
}

impl<K: Eq + Hash + Clone, S> SingleFlight<K, S> {
    /// Creates an empty single-flight table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tries to make `key` a leader. Returns true when no identical request
    /// was in flight (the caller must execute and later
    /// [`complete`](Self::complete) the key); false when a leader already
    /// exists (the caller should [`attach`](Self::attach) instead).
    pub fn lead(&mut self, key: K) -> bool {
        if self.in_flight.contains_key(&key) {
            return false;
        }
        self.in_flight.insert(key, Vec::new());
        true
    }

    /// Subscribes `subscriber` to the in-flight leader of `key`. Returns
    /// false (dropping nothing: the subscriber is handed back untouched via
    /// the `Err`-free bool contract — callers check [`lead`](Self::lead)
    /// first) when no leader is in flight.
    pub fn attach(&mut self, key: &K, subscriber: S) -> bool {
        match self.in_flight.get_mut(key) {
            Some(followers) => {
                followers.push(subscriber);
                self.coalesced += 1;
                true
            }
            None => false,
        }
    }

    /// Completes the leader of `key`, returning its followers in attach
    /// order (empty when nobody attached, or no leader was in flight).
    pub fn complete(&mut self, key: &K) -> Vec<S> {
        self.in_flight.remove(key).unwrap_or_default()
    }

    /// Completes the leader of `key`, handing each follower its own clone of
    /// the leader's `value` — the delivery contract the follower-equivalence
    /// property pins: every follower's result is byte-identical to the
    /// leader's.
    pub fn complete_with<V: Clone>(&mut self, key: &K, value: &V) -> Vec<(S, V)> {
        self.complete(key)
            .into_iter()
            .map(|s| (s, value.clone()))
            .collect()
    }

    /// Number of keys currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Total followers attached over the table's lifetime.
    pub fn coalesced(&self) -> u64 {
        self.coalesced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_inert_and_validates() {
        let d = FrontendConfig::default();
        assert!(!d.enabled());
        d.validate().unwrap();
        assert!(FrontendConfig {
            cache_capacity: 1,
            ..d
        }
        .enabled());
        assert!(FrontendConfig {
            coalesce: true,
            ..d
        }
        .enabled());
        assert!(FrontendConfig {
            cache_ttl_secs: 0.0,
            ..d
        }
        .validate()
        .is_err());
        assert!(FrontendConfig {
            cache_ttl_secs: f64::NAN,
            ..d
        }
        .validate()
        .is_err());
        assert!(FrontendConfig {
            fanout_cost_secs: f64::INFINITY,
            ..d
        }
        .validate()
        .is_err());
        assert!(FrontendConfig {
            fanout_cost_secs: -0.1,
            ..d
        }
        .validate()
        .is_err());
    }

    #[test]
    fn cache_serves_fresh_entries_and_expires_stale_ones() {
        let mut c: ResultCache<u32, &str> = ResultCache::new(2, 1.0);
        assert_eq!(c.lookup(&7, 0.0), Lookup::Miss);
        c.insert(7, "seven", 0.0);
        assert_eq!(c.lookup(&7, 0.5), Lookup::Hit("seven"));
        assert_eq!(c.lookup(&7, 1.0), Lookup::Hit("seven"), "TTL is inclusive");
        assert_eq!(c.lookup(&7, 1.5), Lookup::Stale);
        assert_eq!(c.lookup(&7, 1.6), Lookup::Miss, "stale entries are gone");
        let s = c.stats();
        assert_eq!((s.hits, s.stale, s.misses), (2, 1, 2));
    }

    #[test]
    fn lru_evicts_least_recently_used_and_hits_refresh_recency() {
        let mut c: ResultCache<u32, u32> = ResultCache::new(2, f64::INFINITY);
        c.insert(1, 10, 0.0);
        c.insert(2, 20, 0.1);
        // Touch 1 so 2 becomes LRU.
        assert_eq!(c.lookup(&1, 0.2), Lookup::Hit(10));
        c.insert(3, 30, 0.3);
        assert_eq!(c.lookup(&2, 0.4), Lookup::Miss, "2 was evicted");
        assert_eq!(c.lookup(&1, 0.5), Lookup::Hit(10));
        assert_eq!(c.lookup(&3, 0.6), Lookup::Hit(30));
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_cache_is_disabled() {
        let mut c: ResultCache<u32, u32> = ResultCache::new(0, 1.0);
        c.insert(1, 10, 0.0);
        assert!(c.is_empty());
        assert_eq!(c.lookup(&1, 0.0), Lookup::Miss);
    }

    #[test]
    fn reinsert_replaces_value_without_eviction() {
        let mut c: ResultCache<u32, u32> = ResultCache::new(1, 10.0);
        c.insert(1, 10, 0.0);
        c.insert(1, 11, 5.0);
        assert_eq!(c.lookup(&1, 14.0), Lookup::Hit(11), "TTL restarts at 5.0");
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.stats().inserts, 2);
    }

    #[test]
    fn single_flight_leads_attaches_and_completes_in_order() {
        let mut f: SingleFlight<&str, u32> = SingleFlight::new();
        assert!(f.lead("q"));
        assert!(!f.lead("q"), "second identical request is not a leader");
        assert!(f.attach(&"q", 1));
        assert!(f.attach(&"q", 2));
        assert!(!f.attach(&"other", 9), "no leader, nothing to attach to");
        assert_eq!(f.in_flight(), 1);
        assert_eq!(f.complete(&"q"), vec![1, 2]);
        assert_eq!(f.in_flight(), 0);
        assert_eq!(f.coalesced(), 2);
        assert!(f.complete(&"q").is_empty(), "completion is idempotent");
        assert!(f.lead("q"), "a completed key can lead again");
    }
}

#[cfg(test)]
mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Replaying the event log, the cache never serves an entry past its
        /// TTL and never holds more than `capacity` resident entries — the
        /// LRU/TTL invariants reconstructed from the outside, not read off
        /// the implementation's own state.
        #[test]
        fn cache_event_log_reconstructs_ttl_and_capacity_invariants(
            capacity in 1usize..5,
            ttl_centis in 1u64..200,
            ops in proptest::collection::vec((0u32..8, 0u64..50, proptest::bool::ANY), 1..300),
        ) {
            let ttl = ttl_centis as f64 / 100.0;
            let mut cache: ResultCache<u32, u64> =
                ResultCache::new(capacity, ttl).with_event_log();
            let mut now = 0.0;
            for (i, &(key, dt_centis, is_insert)) in ops.iter().enumerate() {
                now += dt_centis as f64 / 100.0;
                if is_insert {
                    cache.insert(key, i as u64, now);
                } else {
                    cache.lookup(&key, now);
                }
            }
            // Reconstruction: resident set driven purely by the log.
            let mut resident: Vec<(u32, f64)> = Vec::new(); // (key, inserted_at)
            for ev in cache.events() {
                match ev.kind {
                    CacheEventKind::Insert => {
                        resident.retain(|(k, _)| *k != ev.key);
                        resident.push((ev.key, ev.at_secs));
                        prop_assert!(
                            resident.len() <= capacity,
                            "capacity exceeded after insert of {} at {}",
                            ev.key, ev.at_secs
                        );
                    }
                    CacheEventKind::Hit => {
                        let (_, inserted_at) = resident
                            .iter()
                            .find(|(k, _)| *k == ev.key)
                            .copied()
                            .expect("hit on a key the log never inserted");
                        prop_assert!(
                            ev.at_secs - inserted_at <= ttl + 1e-12,
                            "entry for {} served {}s after insertion, ttl {}",
                            ev.key, ev.at_secs - inserted_at, ttl
                        );
                    }
                    CacheEventKind::Stale => {
                        let (_, inserted_at) = resident
                            .iter()
                            .find(|(k, _)| *k == ev.key)
                            .copied()
                            .expect("stale removal of a key the log never inserted");
                        prop_assert!(
                            ev.at_secs - inserted_at > ttl,
                            "fresh entry for {} reported stale", ev.key
                        );
                        resident.retain(|(k, _)| *k != ev.key);
                    }
                    CacheEventKind::Evict => {
                        let pos = resident.iter().position(|(k, _)| *k == ev.key)
                            .expect("evicted a key the log never inserted");
                        resident.remove(pos);
                    }
                }
            }
            // The reconstructed resident set matches the cache's own count.
            prop_assert_eq!(resident.len(), cache.len());
        }

        /// Follower equivalence: every follower completed via
        /// `complete_with` receives a value byte-identical to the leader's,
        /// and followers come back in attach order.
        #[test]
        fn followers_receive_byte_identical_results(
            payload in proptest::collection::vec(any::<u8>(), 0..256),
            followers in 0usize..20,
        ) {
            let mut flight: SingleFlight<u8, usize> = SingleFlight::new();
            prop_assert!(flight.lead(0));
            for i in 0..followers {
                prop_assert!(flight.attach(&0, i));
            }
            let delivered = flight.complete_with(&0, &payload);
            prop_assert_eq!(delivered.len(), followers);
            for (i, (subscriber, value)) in delivered.iter().enumerate() {
                prop_assert_eq!(*subscriber, i);
                prop_assert_eq!(value, &payload);
            }
            prop_assert_eq!(flight.coalesced(), followers as u64);
        }

        /// Work conservation at the single-flight layer: over any
        /// lead/attach/complete interleaving, every attach is either still in
        /// flight or was delivered by exactly one completion — no follower is
        /// lost or duplicated.
        #[test]
        fn single_flight_conserves_subscribers(
            ops in proptest::collection::vec((0u8..4, 0u8..3), 1..200),
        ) {
            let mut flight: SingleFlight<u8, u32> = SingleFlight::new();
            let mut attached = 0u64;
            let mut delivered = 0u64;
            let mut next = 0u32;
            for &(key, op) in &ops {
                match op {
                    0 => { flight.lead(key); }
                    1 => {
                        if flight.attach(&key, next) {
                            attached += 1;
                        }
                        next += 1;
                    }
                    _ => delivered += flight.complete(&key).len() as u64,
                }
            }
            for key in 0u8..4 {
                delivered += flight.complete(&key).len() as u64;
            }
            prop_assert_eq!(attached, delivered);
            prop_assert_eq!(flight.coalesced(), attached);
        }
    }
}
