//! # hierdb
//!
//! A Rust reproduction of *Bouganim, Florescu, Valduriez — "Dynamic Load
//! Balancing in Hierarchical Parallel Database Systems"* (VLDB 1996 / INRIA
//! RR-2815).
//!
//! The paper proposes **Dynamic Processing (DP)**: an execution model for
//! multi-join queries on hierarchical parallel database systems — a
//! shared-nothing cluster of shared-memory multiprocessor nodes (SM-nodes).
//! Query work is decomposed into self-contained *activations* placed in
//! per-(operator, thread) queues; any thread of a node can execute any
//! unblocked activation of that node, which maximizes intra- and
//! inter-operator load balancing locally and minimizes expensive inter-node
//! load sharing.
//!
//! This crate is the user-facing entry point and simply re-exports the
//! [`dlb_core`] facade; the implementation lives in the workspace crates:
//!
//! | crate | contents |
//! |---|---|
//! | `dlb-common` | identifiers, virtual time, configuration, Zipf skew |
//! | `dlb-sim` | discrete-event substrate (calendar, disks, network, CPU accounting) |
//! | `dlb-storage` | relations, partitioning, buckets, catalog |
//! | `dlb-query` | workload generator, cost model, bushy-tree optimizer, parallel plans |
//! | `dlb-exec` | the DP / FP / SP execution engines and global load balancing |
//! | `dlb-core` | high-level API: systems, workloads, experiments, summaries |
//! | `dlb-bench` | harnesses regenerating every figure of the paper |
//!
//! ## Quick start
//!
//! ```
//! use hierdb::{AdHocQuery, HierarchicalSystem, Strategy};
//!
//! let system = HierarchicalSystem::hierarchical(2, 4);
//! let plans = AdHocQuery::new("demo")
//!     .relation("orders", 30_000)
//!     .relation("customers", 5_000)
//!     .join("orders", "customers")
//!     .compile(&system)
//!     .unwrap();
//! let report = system.run(&plans[0], Strategy::dynamic()).unwrap();
//! println!("response time: {}", report.response_time);
//! ```
//!
//! ## Scenarios
//!
//! The paper's whole evaluation grid is driven by declarative, serializable
//! scenario specs (see [`scenario`]): every figure is a bundled spec, and new
//! sweeps are a builder call — or a JSON file for the `scenario` binary —
//! away:
//!
//! ```
//! use hierdb::scenario::{self, Axis};
//!
//! let spec = scenario::ScenarioSpec::builder("skew-mini")
//!     .machine(1, 2)
//!     .rows(Axis::Skew, [0.0, 0.5])
//!     .build()
//!     .unwrap()
//!     .with_generated_workload(1, 3, 0.005, 7);
//! let report = scenario::run_scenario(&spec).unwrap();
//! assert_eq!(report.points.len(), 2);
//! println!("{}", scenario::render_text(&report));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use dlb_core::*;

/// The workspace crates, re-exported for users who need lower-level access
/// (e.g. driving the simulator directly or building custom plans).
pub mod raw {
    pub use dlb_common as common;
    pub use dlb_exec as exec;
    pub use dlb_query as query;
    pub use dlb_sim as sim;
    pub use dlb_storage as storage;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_reexports_are_usable() {
        let system = HierarchicalSystem::shared_memory(2);
        assert_eq!(system.total_processors(), 2);
        let options = ExecOptions::builder().skew(0.2).min_steal_tuples(8).build();
        assert_eq!(options.steal.min_tuples, 8);
        let _params: WorkloadParams = WorkloadParams::default();
        assert!(scenario::find("fig6").is_some());
    }

    #[test]
    fn raw_module_exposes_workspace_crates() {
        let zipf = raw::common::ZipfDistribution::new(4, 0.5);
        assert_eq!(zipf.len(), 4);
        let q = raw::exec::ActivationQueue::new(2);
        assert!(q.is_empty());
    }
}
